// Package wal implements the write-ahead log that makes tdserved's
// live mutations durable: an append-only file of length-prefixed,
// FNV-1a-checksummed records (the checksum discipline of the v5 model
// snapshot), appended before a mutation is acknowledged and replayed
// against the loaded snapshot on startup.
//
// Recovery is deliberately conservative. A record cut short by a crash
// — a torn frame at the end of the file — is repaired: the log is
// truncated back to the last record that checksums, and everything
// before it replays. A record that fails its checksum in the middle of
// the file, with valid-looking data after it, is not a crash artifact
// (appends are strictly sequential) but corruption or tampering, and
// Open refuses the whole log with ErrCorrupt rather than silently
// dropping acknowledged operations.
//
// The file layout is an 8-byte magic header followed by frames:
//
//	u32  payload length (little-endian)
//	u8   op kind (opaque to this package)
//	u64  sequence number (monotonic, +1 per record)
//	[n]  payload
//	u64  FNV-1a over everything above
//
// Durability is governed by SyncPolicy: SyncAlways fsyncs every append
// before it returns (an acknowledged operation survives any crash),
// SyncEvery batches fsyncs on a timer (a crash can lose up to one
// interval of acknowledged operations), SyncNever leaves flushing to
// the OS (cheapest, weakest). The tradeoff is measured by
// BenchmarkIngestWAL and documented in the README ops runbook.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrCorrupt reports a log whose middle fails validation: a record with
// a bad checksum or a sequence-number break that is followed by more
// data. Crash damage only ever tears the tail; mid-log damage means the
// file was tampered with or the disk is failing, and replaying around
// it could resurrect a state no client was ever acknowledged.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs every append before it returns: an acknowledged
	// mutation survives any crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs at most once per Options.Interval, amortizing the
	// fsync cost across a burst of appends; a crash can lose up to one
	// interval of acknowledged mutations.
	SyncEvery
	// SyncNever never fsyncs explicitly; the OS flushes at its leisure.
	// A process crash loses nothing (the page cache survives), a machine
	// crash can lose everything since the last checkpoint.
	SyncNever
)

// String returns the flag-style name: "always", "interval" or "never".
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("syncpolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy converts a flag value ("always", "interval",
// "never") into a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncEvery, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

// Options tunes a Log; the zero value is SyncAlways on the real
// filesystem.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Interval is the SyncEvery flush period (default 100ms). Under
	// SyncEvery a background flusher also syncs a quiet log, so the last
	// append of a burst is never left unsynced for longer than this.
	Interval time.Duration
	// FS is the filesystem seam (nil = the real one); tests inject
	// MemFS here to model torn writes, ENOSPC and crashes.
	FS FS
}

// Record is one recovered log entry: the op kind and payload exactly as
// appended, plus the sequence number assigned at append time.
type Record struct {
	// Seq is the record's monotonic sequence number.
	Seq uint64
	// Op is the caller's op kind, opaque to this package.
	Op uint8
	// Payload is the caller's encoded operation.
	Payload []byte
}

// Stats is a point-in-time snapshot of a log's counters.
type Stats struct {
	// LastSeq is the sequence number of the newest record (appended or
	// recovered); 0 on an empty log.
	LastSeq uint64 `json:"last_seq"`
	// Appends counts successful Append calls this process.
	Appends uint64 `json:"appends"`
	// Syncs counts fsyncs issued (explicit, policy-driven and timed).
	Syncs uint64 `json:"syncs"`
	// Checkpoints counts successful Checkpoint rotations.
	Checkpoints uint64 `json:"checkpoints"`
	// SizeBytes is the current log file size.
	SizeBytes int64 `json:"size_bytes"`
	// Policy is the fsync policy name ("always", "interval", "never").
	Policy string `json:"policy"`
}

const (
	// magic identifies a wal file (8 bytes, version in the last byte).
	magic = "tdwal\x00\x00\x01"
	// frameHeaderSize is len(u32) + op(u8) + seq(u64).
	frameHeaderSize = 4 + 1 + 8
	// frameTrailerSize is the u64 checksum.
	frameTrailerSize = 8
	// maxPayload bounds a single record; a length field beyond it can
	// only be a torn or corrupted frame.
	maxPayload = 256 << 20
	// defaultInterval is the SyncEvery flush period when Options.Interval
	// is zero.
	defaultInterval = 100 * time.Millisecond
)

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends are serialized internally.
type Log struct {
	fs   FS
	path string
	opts Options

	mu       sync.Mutex
	f        File
	seq      uint64 // last appended or recovered sequence number
	size     int64  // current file length
	dirty    bool   // unsynced appends pending
	lastSync time.Time
	broken   error // set when the file state is unknown (failed repair)
	closed   bool

	appends     uint64
	syncs       uint64
	checkpoints uint64

	flushDone chan struct{} // closes the SyncEvery background flusher
	flushWG   sync.WaitGroup
}

// Open opens (creating if missing) the log at path, recovers its
// records, and returns them for replay. A torn tail — a final record
// cut short or failing its checksum — is truncated away; damage before
// the tail fails with ErrCorrupt and nothing is modified.
func Open(path string, opts Options) (*Log, []Record, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	f, err := opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	recs, validEnd, err := scan(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	if validEnd == 0 {
		// Fresh (or fully torn header): start from an empty framed file.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: resetting %s: %w", path, err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, err
		}
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: writing header of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: syncing header of %s: %w", path, err)
		}
		validEnd = int64(len(magic))
	} else if err := f.Truncate(validEnd); err != nil {
		// Repair the torn tail so future appends start on a frame
		// boundary.
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{
		fs:       opts.FS,
		path:     path,
		opts:     opts,
		f:        f,
		size:     validEnd,
		lastSync: time.Now(),
	}
	if n := len(recs); n > 0 {
		l.seq = recs[n-1].Seq
	}
	if opts.Sync == SyncEvery {
		l.flushDone = make(chan struct{})
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	return l, recs, nil
}

// scan parses the whole file, returning the validated records and the
// byte offset of the end of the last valid record. A file without a
// complete magic header yields (nil, 0): the caller rewrites it. A bad
// record at the tail is excluded from the result (the caller truncates
// to validEnd); a bad record followed by more data is ErrCorrupt.
func scan(f File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(magic) {
		return nil, 0, nil
	}
	if string(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic header", ErrCorrupt)
	}
	var recs []Record
	off := int64(len(magic))
	for int(off) < len(data) {
		rec, end, ok := parseFrame(data, off)
		if !ok {
			// The frame at off does not validate. At the tail that is
			// crash damage and recovery truncates it; with data beyond
			// the frame's own extent it is mid-log corruption.
			if !tornTail(data, off) {
				return nil, 0, fmt.Errorf("%w: record %d at offset %d fails validation with %d bytes following",
					ErrCorrupt, len(recs)+1, off, int64(len(data))-off)
			}
			return recs, off, nil
		}
		if n := len(recs); n > 0 && rec.Seq != recs[n-1].Seq+1 {
			return nil, 0, fmt.Errorf("%w: sequence break at record %d (seq %d after %d)",
				ErrCorrupt, n+1, rec.Seq, recs[n-1].Seq)
		}
		recs = append(recs, rec)
		off = end
	}
	return recs, off, nil
}

// parseFrame decodes one frame starting at off. ok is false when the
// frame is incomplete, oversized or fails its checksum.
func parseFrame(data []byte, off int64) (rec Record, end int64, ok bool) {
	rest := data[off:]
	if len(rest) < frameHeaderSize {
		return rec, 0, false
	}
	n := int64(leUint32(rest))
	if n > maxPayload {
		return rec, 0, false
	}
	total := frameHeaderSize + n + frameTrailerSize
	if int64(len(rest)) < total {
		return rec, 0, false
	}
	body := rest[:frameHeaderSize+n]
	if leUint64(rest[frameHeaderSize+n:]) != fnv1a(body) {
		return rec, 0, false
	}
	rec.Op = rest[4]
	rec.Seq = leUint64(rest[5:])
	rec.Payload = append([]byte(nil), rest[frameHeaderSize:frameHeaderSize+n]...)
	return rec, off + total, true
}

// tornTail reports whether the invalid frame at off is consistent with
// crash damage: either the frame itself runs past the end of the file
// (a partial write), or it is the final frame-sized region of the file
// (an in-place corruption of the last record, indistinguishable from a
// torn rewrite). An invalid frame with data beyond its own claimed
// extent is not torn — appends never leave bytes after a partial frame.
func tornTail(data []byte, off int64) bool {
	rest := data[off:]
	if len(rest) < frameHeaderSize {
		return true
	}
	n := int64(leUint32(rest))
	if n > maxPayload {
		// The length field itself is garbage; if what follows could hold
		// yet more records we cannot trust any of it, but a garbage
		// length can only be the torn tail when nothing after it parses:
		// appends are sequential, so bytes only ever follow a complete
		// record. Any validating record after this point means the
		// damage is mid-log.
		return !anyValidFrameAfter(data, off+1)
	}
	return int64(len(rest)) <= frameHeaderSize+n+frameTrailerSize
}

// anyValidFrameAfter scans every byte offset past from for a frame that
// checksums, the signal that distinguishes mid-log garbage (valid data
// follows the damage) from a torn tail (nothing after it parses).
func anyValidFrameAfter(data []byte, from int64) bool {
	for off := from; off < int64(len(data)); off++ {
		if _, _, ok := parseFrame(data, off); ok {
			return true
		}
	}
	return false
}

// Append writes one record and applies the sync policy, returning the
// record's sequence number. When it returns nil under SyncAlways the
// record is on stable storage; under the other policies it is in the
// file (crash-recoverable after the next flush). When it returns an
// error the record is NOT in the log: a partial write or failed fsync
// is rolled back by truncating to the previous record boundary, so a
// replay can never resurrect an operation that was not acknowledged.
// If even the rollback fails the log is marked broken and every further
// append reports it.
func (l *Log) Append(op uint8, payload []byte) (uint64, error) {
	if int64(len(payload)) > maxPayload {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record bound", len(payload), int64(maxPayload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, fmt.Errorf("wal: log unusable after failed repair: %w", l.broken)
	}
	seq := l.seq + 1
	frame := appendFrame(nil, op, seq, payload)
	n, err := l.f.Write(frame)
	if err != nil || n != len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		l.rollbackLocked(err)
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	l.size += int64(len(frame))
	l.seq = seq
	l.appends++
	l.dirty = true
	switch l.opts.Sync {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			l.size -= int64(len(frame))
			l.seq = seq - 1
			l.rollbackLocked(err)
			return 0, fmt.Errorf("wal: syncing record %d: %w", seq, err)
		}
	case SyncEvery:
		if time.Since(l.lastSync) >= l.opts.Interval {
			if err := l.syncLocked(); err != nil {
				l.size -= int64(len(frame))
				l.seq = seq - 1
				l.rollbackLocked(err)
				return 0, fmt.Errorf("wal: syncing record %d: %w", seq, err)
			}
		}
	}
	return seq, nil
}

// rollbackLocked cuts the file back to the last good record boundary
// (l.size) after a failed append, so the log stays well-formed for both
// recovery and the next append. The truncation itself is fsynced
// best-effort — if the failed record's bytes had already reached disk,
// leaving the shrunken length unsynced could resurrect them after a
// crash. A rollback that cannot even truncate marks the log broken.
// Callers hold mu.
func (l *Log) rollbackLocked(cause error) {
	if terr := l.f.Truncate(l.size); terr != nil {
		l.broken = fmt.Errorf("append failed (%w) and truncate failed (%v)", cause, terr)
		return
	}
	if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
		l.broken = fmt.Errorf("append failed (%w) and seek failed (%v)", cause, serr)
		return
	}
	l.f.Sync() // best-effort: make the rollback durable too
	l.dirty = false
}

// Sync flushes pending appends to stable storage, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// syncLocked fsyncs if dirty; callers hold mu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.syncs++
	l.lastSync = time.Now()
	return nil
}

// flushLoop is the SyncEvery background flusher: it syncs a dirty log
// once per interval even when no append arrives to trigger the timed
// sync, bounding how long an acknowledged record can stay volatile.
func (l *Log) flushLoop() {
	defer l.flushWG.Done()
	ticker := time.NewTicker(l.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed && l.broken == nil {
				l.syncLocked() // best-effort; Append surfaces sync errors
			}
			l.mu.Unlock()
		case <-l.flushDone:
			return
		}
	}
}

// Checkpoint drops every record with sequence number <= upTo by
// rotating the log: the surviving tail is rewritten to a sidecar file,
// synced, and atomically renamed over the live log. Called after a
// model snapshot that includes the state up to upTo has been durably
// saved — the snapshot now carries those mutations, so replaying them
// again is at best wasted work. Records appended concurrently are
// preserved: they sequence after upTo by construction.
func (l *Log) Checkpoint(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log unusable after failed repair: %w", l.broken)
	}
	if err := l.syncLocked(); err != nil {
		return fmt.Errorf("wal: syncing before checkpoint: %w", err)
	}
	recs, _, err := scan(l.f)
	// scan moved the handle's offset; restore it so appends after an
	// early error return still land at the end of the live log.
	if _, serr := l.f.Seek(l.size, io.SeekStart); serr != nil {
		l.broken = serr
		return serr
	}
	if err != nil {
		return fmt.Errorf("wal: re-reading %s for checkpoint: %w", l.path, err)
	}
	keep := recs[:0]
	for _, r := range recs {
		if r.Seq > upTo {
			keep = append(keep, r)
		}
	}
	side := l.path + ".checkpoint"
	sf, err := l.fs.OpenFile(side, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint sidecar: %w", err)
	}
	buf := []byte(magic)
	for _, r := range keep {
		buf = appendFrame(buf, r.Op, r.Seq, r.Payload)
	}
	if _, err := sf.Write(buf); err != nil {
		sf.Close()
		l.fs.Remove(side)
		return fmt.Errorf("wal: writing checkpoint sidecar: %w", err)
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		l.fs.Remove(side)
		return fmt.Errorf("wal: syncing checkpoint sidecar: %w", err)
	}
	if err := sf.Close(); err != nil {
		l.fs.Remove(side)
		return err
	}
	if err := l.fs.Rename(side, l.path); err != nil {
		l.fs.Remove(side)
		return fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	// The old handle now points at the unlinked pre-checkpoint file;
	// reopen the installed one and append at its end.
	nf, err := l.fs.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		l.broken = fmt.Errorf("checkpoint installed but reopen failed: %w", err)
		return fmt.Errorf("wal: reopening after checkpoint: %w", err)
	}
	if _, err := nf.Seek(int64(len(buf)), io.SeekStart); err != nil {
		nf.Close()
		l.broken = err
		return err
	}
	l.f.Close()
	l.f = nf
	l.size = int64(len(buf))
	l.dirty = false
	l.checkpoints++
	return nil
}

// LastSeq returns the newest record's sequence number (appended or
// recovered; 0 on an empty log).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		LastSeq:     l.seq,
		Appends:     l.appends,
		Syncs:       l.syncs,
		Checkpoints: l.checkpoints,
		SizeBytes:   l.size,
		Policy:      l.opts.Sync.String(),
	}
}

// Close flushes pending appends and closes the file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.broken == nil {
		if l.dirty {
			if serr := l.f.Sync(); serr != nil {
				err = serr
			} else {
				l.dirty = false
				l.syncs++
			}
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	flushDone := l.flushDone
	l.mu.Unlock()
	if flushDone != nil {
		close(flushDone)
		l.flushWG.Wait()
	}
	return err
}

// appendFrame encodes one record frame onto buf.
func appendFrame(buf []byte, op uint8, seq uint64, payload []byte) []byte {
	start := len(buf)
	buf = appendLeUint32(buf, uint32(len(payload)))
	buf = append(buf, op)
	buf = appendLeUint64(buf, seq)
	buf = append(buf, payload...)
	return appendLeUint64(buf, fnv1a(buf[start:]))
}

// fnv1a is the 64-bit FNV-1a digest, the same checksum the v5 snapshot
// manifests use.
func fnv1a(b []byte) uint64 {
	const (
		offset64 = uint64(14695981039346656037)
		prime64  = uint64(1099511628211)
	)
	h := offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leUint64(b []byte) uint64 {
	return uint64(leUint32(b)) | uint64(leUint32(b[4:]))<<32
}

func appendLeUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendLeUint64(buf []byte, v uint64) []byte {
	return append(appendLeUint32(buf, uint32(v)), byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
