package wal

import (
	"bytes"
	"math/rand"
	"testing"
)

// stormOps builds a deterministic pseudo-random operation stream: op
// kinds 1/2 with payloads of varied sizes, including empty and
// multi-hundred-byte ones so cut points land in headers, payloads and
// trailers alike.
func stormOps(rng *rand.Rand, n int) []appended {
	ops := make([]appended, 0, n)
	for i := 0; i < n; i++ {
		size := 0
		switch rng.Intn(4) {
		case 0:
			size = rng.Intn(8)
		case 1:
			size = 8 + rng.Intn(64)
		default:
			size = 64 + rng.Intn(400)
		}
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(rng.Intn(256))
		}
		ops = append(ops, appended{op: uint8(1 + rng.Intn(2)), payload: p})
	}
	return ops
}

// TestCrashPointFuzz is the core crash property: write a storm of
// records, then simulate a crash at EVERY byte offset of the resulting
// file. Recovery must always succeed and must recover exactly the
// records whose frames were completely on disk at the crash point — the
// acked prefix, never more, never a gap. The recovered log must also
// accept new appends with continuous sequence numbering.
func TestCrashPointFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7da1))
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{})
	ops := stormOps(rng, 40)
	var ends []int64
	for i := range ops {
		ops[i].seq = mustAppend(t, l, ops[i].op, ops[i].payload)
		ends = append(ends, l.Stats().SizeBytes)
	}
	l.Close()
	full := fs.FileBytes(testPath)

	for cut := 0; cut <= len(full); cut++ {
		complete := 0
		for _, e := range ends {
			if int64(cut) >= e {
				complete++
			}
		}
		cfs := NewMemFS()
		cfs.WriteFile(testPath, full[:cut])
		cl, recs, err := Open(testPath, Options{FS: cfs})
		if err != nil {
			t.Fatalf("crash at offset %d: Open: %v", cut, err)
		}
		if len(recs) != complete {
			t.Fatalf("crash at offset %d: recovered %d records, want %d", cut, len(recs), complete)
		}
		for i, r := range recs {
			w := ops[i]
			if r.Seq != w.seq || r.Op != w.op || !bytes.Equal(r.Payload, w.payload) {
				t.Fatalf("crash at offset %d: record %d diverges from the acked prefix", cut, i)
			}
		}
		if seq := mustAppend(t, cl, 7, []byte("continuation")); seq != uint64(complete)+1 {
			t.Fatalf("crash at offset %d: continuation seq %d, want %d", cut, seq, complete+1)
		}
		cl.Close()
	}
}

// TestCrashStormSyncAlways drives repeated crash/recover/continue cycles
// under SyncAlways: every acknowledged append must survive every crash,
// exactly — SyncAlways means ack implies durable.
func TestCrashStormSyncAlways(t *testing.T) {
	rng := rand.New(rand.NewSource(0xacced))
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Sync: SyncAlways})
	var acked []appended
	for round := 0; round < 8; round++ {
		for _, op := range stormOps(rng, 5+rng.Intn(10)) {
			seq, err := l.Append(op.op, op.payload)
			if err != nil {
				t.Fatalf("round %d: Append: %v", round, err)
			}
			op.seq = seq
			acked = append(acked, op)
		}
		fs.Crash(rng.Intn(64)) // keep a random sliver of any unsynced tail
		var recs []Record
		var err error
		l, recs, err = Open(testPath, Options{FS: fs, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("round %d: Open after crash: %v", round, err)
		}
		checkRecords(t, recs, acked)
	}
	l.Close()
}

// TestCrashStormSyncNever verifies the weaker policies still uphold the
// prefix property: a crash may lose acknowledged records, but whatever
// survives is an exact prefix of the acked sequence — never a subset
// with holes, never a record that was not acked.
func TestCrashStormSyncNever(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbeef))
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Sync: SyncNever})
	var acked []appended
	recovered := 0 // records known durable from prior rounds
	for round := 0; round < 8; round++ {
		for _, op := range stormOps(rng, 5+rng.Intn(10)) {
			seq, err := l.Append(op.op, op.payload)
			if err != nil {
				t.Fatalf("round %d: Append: %v", round, err)
			}
			op.seq = seq
			acked = append(acked, op)
		}
		if rng.Intn(2) == 0 {
			// An explicit flush (the daemon syncs on shutdown and before
			// snapshots) pins everything so far.
			if err := l.Sync(); err != nil {
				t.Fatalf("round %d: Sync: %v", round, err)
			}
		}
		fs.Crash(rng.Intn(512))
		var recs []Record
		var err error
		l, recs, err = Open(testPath, Options{FS: fs, Sync: SyncNever})
		if err != nil {
			t.Fatalf("round %d: Open after crash: %v", round, err)
		}
		if len(recs) > len(acked) {
			t.Fatalf("round %d: recovered %d records but only %d were acked", round, len(recs), len(acked))
		}
		if len(recs) < recovered {
			t.Fatalf("round %d: recovery went backwards: %d records, had %d", round, len(recs), recovered)
		}
		checkRecords(t, recs, acked[:len(recs)])
		// The crash discarded the unsynced suffix for good; the storm
		// continues from the recovered state.
		acked = acked[:len(recs)]
		recovered = len(recs)
		if n := len(recs); n > 0 && l.LastSeq() != recs[n-1].Seq {
			t.Fatalf("round %d: LastSeq %d != last recovered seq %d", round, l.LastSeq(), recs[n-1].Seq)
		}
	}
	l.Close()
}

// TestCrashStormWithFaults mixes torn writes and ENOSPC into the storm:
// failed appends must never surface in recovery, successful ones must
// all survive (SyncAlways), across repeated crashes.
func TestCrashStormWithFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(0xfa17))
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Sync: SyncAlways})
	var acked []appended
	for round := 0; round < 6; round++ {
		for i, op := range stormOps(rng, 8) {
			switch {
			case i == 2:
				fs.FailNextWrite(rng.Intn(20), nil)
			case i == 5:
				fs.SetWriteLimit(int64(rng.Intn(30)))
			}
			seq, err := l.Append(op.op, op.payload)
			fs.SetWriteLimit(-1)
			if err != nil {
				continue // not acked; must not be recovered
			}
			op.seq = seq
			acked = append(acked, op)
		}
		fs.Crash(rng.Intn(64))
		var recs []Record
		var err error
		l, recs, err = Open(testPath, Options{FS: fs, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("round %d: Open after crash: %v", round, err)
		}
		checkRecords(t, recs, acked)
	}
	l.Close()
}
