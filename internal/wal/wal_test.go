package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

const testPath = "wal.log"

// appended mirrors what a test wrote, for comparing against recovery.
type appended struct {
	seq     uint64
	op      uint8
	payload []byte
}

func mustOpen(t *testing.T, fs FS, opts Options) (*Log, []Record) {
	t.Helper()
	opts.FS = fs
	l, recs, err := Open(testPath, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, recs
}

func mustAppend(t *testing.T, l *Log, op uint8, payload []byte) uint64 {
	t.Helper()
	seq, err := l.Append(op, payload)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return seq
}

func checkRecords(t *testing.T, got []Record, want []appended) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		w := want[i]
		if r.Seq != w.seq || r.Op != w.op || !bytes.Equal(r.Payload, w.payload) {
			t.Fatalf("record %d: got {seq %d op %d payload %q}, want {seq %d op %d payload %q}",
				i, r.Seq, r.Op, r.Payload, w.seq, w.op, w.payload)
		}
	}
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	fs := NewMemFS()
	l, recs := mustOpen(t, fs, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	var want []appended
	payloads := [][]byte{[]byte("alpha"), nil, []byte("a longer payload with spaces"), {0, 1, 2, 255}}
	for i, p := range payloads {
		seq := mustAppend(t, l, uint8(i%3+1), p)
		if seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
		want = append(want, appended{seq: seq, op: uint8(i%3 + 1), payload: p})
	}
	if got := l.LastSeq(); got != uint64(len(payloads)) {
		t.Fatalf("LastSeq = %d, want %d", got, len(payloads))
	}
	st := l.Stats()
	if st.Appends != uint64(len(payloads)) || st.Policy != "always" {
		t.Fatalf("stats = %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}

	l2, recs2 := mustOpen(t, fs, Options{})
	defer l2.Close()
	checkRecords(t, recs2, want)
	if l2.LastSeq() != uint64(len(payloads)) {
		t.Fatalf("reopened LastSeq = %d", l2.LastSeq())
	}
	if seq := mustAppend(t, l2, 9, []byte("after reopen")); seq != uint64(len(payloads))+1 {
		t.Fatalf("post-recovery append assigned seq %d", seq)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncEvery}, {"never", SyncNever}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("SyncPolicy(%q).String() = %q", tc.in, got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestSyncAlwaysIsDurablePerAppend(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Sync: SyncAlways})
	defer l.Close()
	mustAppend(t, l, 1, []byte("durable"))
	if d, v := fs.DurableBytes(testPath), fs.FileBytes(testPath); !bytes.Equal(d, v) {
		t.Fatalf("SyncAlways left %d of %d bytes unsynced", len(v)-len(d), len(v))
	}
}

func TestSyncNeverLeavesTailVolatile(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Sync: SyncNever})
	defer l.Close()
	mustAppend(t, l, 1, []byte("volatile"))
	if d, v := fs.DurableBytes(testPath), fs.FileBytes(testPath); len(d) >= len(v) {
		t.Fatalf("SyncNever synced eagerly: durable %d, volatile %d", len(d), len(v))
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if d, v := fs.DurableBytes(testPath), fs.FileBytes(testPath); !bytes.Equal(d, v) {
		t.Fatalf("explicit Sync left %d of %d bytes unsynced", len(v)-len(d), len(v))
	}
}

func TestSyncEveryBackgroundFlush(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Sync: SyncEvery, Interval: 2 * time.Millisecond})
	defer l.Close()
	mustAppend(t, l, 1, []byte("flushed by the background ticker"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if d, v := fs.DurableBytes(testPath), fs.FileBytes(testPath); bytes.Equal(d, v) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced the tail")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTornTailTruncatedAtEveryCut(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{})
	var want []appended
	var ends []int64 // file size after each append (frame boundaries)
	for i := 0; i < 5; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, string(make([]byte, i*7))))
		seq := mustAppend(t, l, uint8(i+1), p)
		want = append(want, appended{seq: seq, op: uint8(i + 1), payload: p})
		ends = append(ends, l.Stats().SizeBytes)
	}
	l.Close()
	full := fs.FileBytes(testPath)

	for cut := 0; cut <= len(full); cut++ {
		// Number of whole frames at or before the cut.
		complete := 0
		for _, e := range ends {
			if int64(cut) >= e {
				complete++
			}
		}
		cfs := NewMemFS()
		cfs.WriteFile(testPath, full[:cut])
		cl, recs, err := Open(testPath, Options{FS: cfs})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		checkRecords(t, recs, want[:complete])
		// The log must be appendable after repair, and a further reopen
		// must see the surviving prefix plus the new record.
		nseq := mustAppend(t, cl, 42, []byte("post-repair"))
		if wantSeq := uint64(complete) + 1; nseq != wantSeq {
			t.Fatalf("cut %d: post-repair append assigned seq %d, want %d", cut, nseq, wantSeq)
		}
		cl.Close()
		cl2, recs2, err := Open(testPath, Options{FS: cfs})
		if err != nil {
			t.Fatalf("cut %d: reopen after repair: %v", cut, err)
		}
		cl2.Close()
		checkRecords(t, recs2, append(append([]appended(nil), want[:complete]...),
			appended{seq: uint64(complete) + 1, op: 42, payload: []byte("post-repair")}))
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{})
	firstEnd := int64(0)
	for i := 0; i < 4; i++ {
		mustAppend(t, l, 1, []byte(fmt.Sprintf("payload number %d", i)))
		if i == 0 {
			firstEnd = l.Stats().SizeBytes
		}
	}
	l.Close()
	full := fs.FileBytes(testPath)

	// Flip one payload byte inside the first record: the damage sits
	// before valid records, so the whole log must be refused.
	tampered := append([]byte(nil), full...)
	tampered[len(magic)+frameHeaderSize] ^= 0xff
	cfs := NewMemFS()
	cfs.WriteFile(testPath, tampered)
	if _, _, err := Open(testPath, Options{FS: cfs}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log bit flip: Open = %v, want ErrCorrupt", err)
	}

	// Garbage spliced between records is likewise mid-log corruption.
	spliced := append([]byte(nil), full[:firstEnd]...)
	spliced = append(spliced, []byte("zzzz-not-a-frame")...)
	spliced = append(spliced, full[firstEnd:]...)
	sfs := NewMemFS()
	sfs.WriteFile(testPath, spliced)
	if _, _, err := Open(testPath, Options{FS: sfs}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("spliced garbage: Open = %v, want ErrCorrupt", err)
	}

	// The same bit flip in the FINAL record is indistinguishable from a
	// torn in-place write and recovers to the prefix.
	tail := append([]byte(nil), full...)
	tail[len(full)-frameTrailerSize-1] ^= 0xff
	tfs := NewMemFS()
	tfs.WriteFile(testPath, tail)
	tl, recs, err := Open(testPath, Options{FS: tfs})
	if err != nil {
		t.Fatalf("torn final record: Open = %v", err)
	}
	tl.Close()
	if len(recs) != 3 {
		t.Fatalf("torn final record: recovered %d records, want 3", len(recs))
	}
}

func TestBadMagicRejected(t *testing.T) {
	fs := NewMemFS()
	fs.WriteFile(testPath, []byte("notawal\x01some trailing data"))
	if _, _, err := Open(testPath, Options{FS: fs}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointRotation(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{})
	var want []appended
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("op %d", i))
		seq := mustAppend(t, l, 1, p)
		want = append(want, appended{seq: seq, op: 1, payload: p})
	}
	preSize := l.Stats().SizeBytes
	if err := l.Checkpoint(5); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if st := l.Stats(); st.Checkpoints != 1 || st.SizeBytes >= preSize {
		t.Fatalf("post-checkpoint stats = %+v (pre size %d)", st, preSize)
	}
	// Sequence numbering continues across the rotation.
	if seq := mustAppend(t, l, 2, []byte("post-checkpoint")); seq != 11 {
		t.Fatalf("post-checkpoint append assigned seq %d, want 11", seq)
	}
	l.Close()

	l2, recs := mustOpen(t, fs, Options{})
	defer l2.Close()
	wantTail := append(append([]appended(nil), want[5:]...), appended{seq: 11, op: 2, payload: []byte("post-checkpoint")})
	checkRecords(t, recs, wantTail)

	// Dropping everything leaves a bare header that still accepts appends.
	if err := l2.Checkpoint(11); err != nil {
		t.Fatalf("full Checkpoint: %v", err)
	}
	if seq := mustAppend(t, l2, 3, []byte("fresh epoch")); seq != 12 {
		t.Fatalf("append after full checkpoint assigned seq %d, want 12", seq)
	}
	l2.Close()
	l3, recs3 := mustOpen(t, fs, Options{})
	l3.Close()
	checkRecords(t, recs3, []appended{{seq: 12, op: 3, payload: []byte("fresh epoch")}})
}

func TestCheckpointSurvivesCrash(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{})
	for i := 0; i < 6; i++ {
		mustAppend(t, l, 1, []byte(fmt.Sprintf("op %d", i)))
	}
	if err := l.Checkpoint(4); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	fs.Crash(0) // the rotated file was synced before the rename
	l2, recs, err := Open(testPath, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	l2.Close()
	checkRecords(t, recs, []appended{{seq: 5, op: 1, payload: []byte("op 4")}, {seq: 6, op: 1, payload: []byte("op 5")}})
}

func TestTornWriteRolledBack(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{})
	defer l.Close()
	mustAppend(t, l, 1, []byte("acked"))
	sizeBefore := l.Stats().SizeBytes

	fs.FailNextWrite(5, nil)
	if _, err := l.Append(1, []byte("torn away")); err == nil {
		t.Fatal("torn append reported success")
	}
	if st := l.Stats(); st.SizeBytes != sizeBefore || st.LastSeq != 1 {
		t.Fatalf("rollback left stats %+v, want size %d seq 1", st, sizeBefore)
	}
	// The log is still healthy: the next append succeeds and recovery
	// sees exactly the acked records.
	mustAppend(t, l, 2, []byte("after the tear"))
	l.Close()
	l2, recs, err := Open(testPath, Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	l2.Close()
	checkRecords(t, recs, []appended{
		{seq: 1, op: 1, payload: []byte("acked")},
		{seq: 2, op: 2, payload: []byte("after the tear")},
	})
}

func TestSyncFailureRolledBack(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{Sync: SyncAlways})
	defer l.Close()
	mustAppend(t, l, 1, []byte("acked"))

	fs.SetSyncError(errors.New("simulated short fsync"))
	if _, err := l.Append(1, []byte("never acked")); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
	fs.SetSyncError(nil)
	if l.LastSeq() != 1 {
		t.Fatalf("LastSeq after rolled-back append = %d, want 1", l.LastSeq())
	}
	mustAppend(t, l, 2, []byte("fsync healed"))
	l.Close()
	l2, recs, err := Open(testPath, Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	l2.Close()
	checkRecords(t, recs, []appended{
		{seq: 1, op: 1, payload: []byte("acked")},
		{seq: 2, op: 2, payload: []byte("fsync healed")},
	})
}

func TestENOSPCRolledBackAndRecoverable(t *testing.T) {
	fs := NewMemFS()
	l, _ := mustOpen(t, fs, Options{})
	mustAppend(t, l, 1, []byte("fits on disk"))

	fs.SetWriteLimit(10) // the next frame cannot fit
	if _, err := l.Append(1, []byte("hits the full disk")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append on full disk = %v, want ErrNoSpace", err)
	}
	fs.SetWriteLimit(-1)
	mustAppend(t, l, 2, []byte("space reclaimed"))

	// Even a hard crash right after the ENOSPC rollback must not
	// resurrect the partially written frame.
	fs.Crash(0)
	l2, recs, err := Open(testPath, Options{FS: fs})
	if err != nil {
		t.Fatalf("Open after ENOSPC crash: %v", err)
	}
	l2.Close()
	checkRecords(t, recs, []appended{
		{seq: 1, op: 1, payload: []byte("fits on disk")},
		{seq: 2, op: 2, payload: []byte("space reclaimed")},
	})
	_ = l // the crashed handle is dead; Close via l2 path only
}
