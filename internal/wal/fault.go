package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ErrNoSpace is the simulated ENOSPC MemFS returns once its write
// budget is exhausted.
var ErrNoSpace = errors.New("wal: simulated ENOSPC: no space left on device")

// ErrCrashed is returned by every operation on a file handle that was
// open when MemFS.Crash fired, modeling a process that lost power.
var ErrCrashed = errors.New("wal: simulated crash: file handle lost")

// MemFS is an in-memory FS with failpoints, the fault-injection seam of
// the crash property suite. It models the durability semantics that
// matter to a write-ahead log:
//
//   - every file tracks its durable content (as of the last successful
//     Sync) separately from its volatile content (all writes);
//   - Crash discards volatile state — keeping an arbitrary prefix of
//     the unsynced tail, like a torn page-cache flush — and poisons
//     every open handle;
//   - failpoints inject torn writes (a write persists only its first k
//     bytes, then fails), ENOSPC (a total write budget), and fsync
//     failures.
//
// A fresh open after Crash sees exactly what a real process would find
// on disk after power loss, so tests can drive the full
// crash/recover/replay cycle without touching a disk.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
	gen   uint64 // bumped by Crash; stale handles fail

	writeErr    error
	tornPending bool
	tornKeep    int
	tornErr     error
	syncErr     error
	writeLimit  int64 // <0 = unlimited
	written     int64

	// Directory-durability model (opt-in via TrackDirSync): a Rename is
	// volatile until SyncDir covers its parent directory, mirroring the
	// POSIX rule that the rename lives in directory metadata that only a
	// directory fsync pushes to stable storage. Crash undoes uncovered
	// renames in reverse order. Off by default so suites that test
	// file-content durability alone keep the classic always-durable
	// rename.
	trackDirs      bool
	pendingRenames []pendingRename
}

// pendingRename records one not-yet-durable rename so Crash can undo
// it: the file moved to newpath, and whatever newpath held before
// (displaced, nil when the target did not exist).
type pendingRename struct {
	oldpath, newpath string
	displaced        *memData
}

// memData is one file's state: volatile content (buf) and the durable
// snapshot taken at the last successful Sync.
type memData struct {
	buf     []byte
	durable []byte
}

// NewMemFS returns an empty in-memory filesystem with no failpoints
// armed and an unlimited write budget.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memData), writeLimit: -1}
}

// SetWriteError makes every write fail with err (nil disarms). No bytes
// are written while armed.
func (fs *MemFS) SetWriteError(err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeErr = err
}

// FailNextWrite arms a one-shot torn write: the next write persists
// only its first keep bytes, then fails with err (io.ErrShortWrite when
// err is nil).
func (fs *MemFS) FailNextWrite(keep int, err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err == nil {
		err = io.ErrShortWrite
	}
	fs.tornPending, fs.tornKeep, fs.tornErr = true, keep, err
}

// SetSyncError makes every Sync fail with err (nil disarms); durable
// state is not advanced by a failed sync.
func (fs *MemFS) SetSyncError(err error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncErr = err
}

// SetWriteLimit caps the total bytes writable across all files;
// exceeding it persists the budget's remainder and fails with
// ErrNoSpace, like a filling disk. Negative = unlimited.
func (fs *MemFS) SetWriteLimit(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeLimit = n
	fs.written = 0
}

// Crash simulates power loss: every file's content reverts to its
// durable snapshot plus at most keepUnsynced bytes of the unsynced
// tail (a torn flush), every open handle is poisoned, and all
// failpoints are disarmed. Files opened afterwards see the post-crash
// content.
func (fs *MemFS) Crash(keepUnsynced int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.gen++
	// Undo renames no SyncDir made durable, newest first so chains
	// (a->b then b->c) unwind correctly.
	for i := len(fs.pendingRenames) - 1; i >= 0; i-- {
		pr := fs.pendingRenames[i]
		if d, ok := fs.files[pr.newpath]; ok {
			fs.files[pr.oldpath] = d
		}
		if pr.displaced != nil {
			fs.files[pr.newpath] = pr.displaced
		} else {
			delete(fs.files, pr.newpath)
		}
	}
	fs.pendingRenames = nil
	for _, d := range fs.files {
		content := append([]byte(nil), d.durable...)
		if extra := len(d.buf) - len(d.durable); extra > 0 {
			keep := keepUnsynced
			if keep > extra {
				keep = extra
			}
			if keep > 0 {
				content = append(content, d.buf[len(d.durable):len(d.durable)+keep]...)
			}
		}
		d.buf = content
		d.durable = append([]byte(nil), content...)
	}
	fs.writeErr, fs.syncErr, fs.tornPending = nil, nil, false
	fs.writeLimit, fs.written = -1, 0
}

// FileBytes returns a copy of a file's current (volatile) content, nil
// when absent — what a concurrent reader of the live file would see.
func (fs *MemFS) FileBytes(name string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), d.buf...)
}

// DurableBytes returns a copy of a file's durable content (as of its
// last successful Sync), nil when absent — what survives a crash that
// keeps none of the unsynced tail.
func (fs *MemFS) DurableBytes(name string) []byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), d.durable...)
}

// WriteFile installs content as both the volatile and durable state of
// name, for seeding recovery scenarios.
func (fs *MemFS) WriteFile(name string, content []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &memData{
		buf:     append([]byte(nil), content...),
		durable: append([]byte(nil), content...),
	}
}

// OpenFile implements FS.
func (fs *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		d = &memData{}
		fs.files[name] = d
	} else if flag&os.O_TRUNC != 0 {
		d.buf = nil
	}
	return &memFile{fs: fs, name: name, gen: fs.gen}, nil
}

// TrackDirSync toggles the directory-durability model: when on, a
// Rename survives Crash only if a later SyncDir covered its parent
// directory. Crash-fuzz suites for atomic-replace protocols arm it to
// catch the classic missing-parent-fsync bug.
func (fs *MemFS) TrackDirSync(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trackDirs = on
	if !on {
		fs.pendingRenames = nil
	}
}

// Rename implements FS (atomic, like POSIX rename on one filesystem).
// Under TrackDirSync the rename is volatile until SyncDir covers its
// parent directory.
func (fs *MemFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	if fs.trackDirs {
		fs.pendingRenames = append(fs.pendingRenames, pendingRename{
			oldpath:   oldpath,
			newpath:   newpath,
			displaced: fs.files[newpath],
		})
	}
	fs.files[newpath] = d
	delete(fs.files, oldpath)
	return nil
}

// SyncDir implements FS: it makes every pending rename whose target's
// parent directory is dir durable. Without TrackDirSync it is a no-op
// (renames are already durable). The Sync failpoint applies, modeling
// filesystems whose directory fsync fails.
func (fs *MemFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.syncErr != nil {
		return fs.syncErr
	}
	if !fs.trackDirs {
		return nil
	}
	kept := fs.pendingRenames[:0]
	for _, pr := range fs.pendingRenames {
		if filepath.Dir(pr.newpath) != dir {
			kept = append(kept, pr)
		}
	}
	fs.pendingRenames = kept
	return nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.files, name)
	return nil
}

// memFile is one open handle on a MemFS file.
type memFile struct {
	fs     *MemFS
	name   string
	gen    uint64
	off    int64
	closed bool
}

// data returns the handle's file state, or an error when the handle is
// stale (post-crash) or closed. Callers hold fs.mu.
func (f *memFile) data() (*memData, error) {
	if f.closed {
		return nil, os.ErrClosed
	}
	if f.gen != f.fs.gen {
		return nil, ErrCrashed
	}
	d, ok := f.fs.files[f.name]
	if !ok {
		return nil, &os.PathError{Op: "stat", Path: f.name, Err: os.ErrNotExist}
	}
	return d, nil
}

// Read implements io.Reader from the handle's offset.
func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return 0, err
	}
	if f.off >= int64(len(d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[f.off:])
	f.off += int64(n)
	return n, nil
}

// Write implements io.Writer at the handle's offset, applying the armed
// failpoints: full write failure, one-shot torn write, and the ENOSPC
// budget.
func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return 0, err
	}
	fs := f.fs
	if fs.writeErr != nil {
		return 0, fs.writeErr
	}
	keep, failErr := len(p), error(nil)
	if fs.tornPending {
		fs.tornPending = false
		if fs.tornKeep < keep {
			keep = fs.tornKeep
		}
		failErr = fs.tornErr
	}
	if fs.writeLimit >= 0 {
		if remaining := fs.writeLimit - fs.written; int64(keep) > remaining {
			if remaining < 0 {
				remaining = 0
			}
			keep = int(remaining)
			failErr = ErrNoSpace
		}
	}
	if end := f.off + int64(keep); end > int64(len(d.buf)) {
		d.buf = append(d.buf, make([]byte, end-int64(len(d.buf)))...)
	}
	copy(d.buf[f.off:], p[:keep])
	f.off += int64(keep)
	fs.written += int64(keep)
	if failErr != nil {
		return keep, failErr
	}
	return keep, nil
}

// Sync implements File: the volatile content becomes durable, unless
// the sync failpoint is armed.
func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return err
	}
	if f.fs.syncErr != nil {
		return f.fs.syncErr
	}
	d.durable = append(d.durable[:0:0], d.buf...)
	return nil
}

// Truncate implements File on the volatile content; durability of the
// truncation itself requires a Sync, exactly like a real file.
func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("wal: negative truncate size %d", size)
	}
	if size <= int64(len(d.buf)) {
		d.buf = d.buf[:size]
	} else {
		d.buf = append(d.buf, make([]byte, size-int64(len(d.buf)))...)
	}
	return nil
}

// Seek implements File.
func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	d, err := f.data()
	if err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(d.buf)) + offset
	default:
		return 0, fmt.Errorf("wal: bad seek whence %d", whence)
	}
	if f.off < 0 {
		f.off = 0
	}
	return f.off, nil
}

// Close implements File. Closing does not sync, exactly like a real
// file descriptor.
func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}
