// Package compress implements the graph compression of the paper's §III-B:
// the MSP (Metadata Shortest Path) algorithm (Algorithm 3), which samples
// cross-corpus metadata-node pairs and keeps only the nodes and edges on
// their shortest paths, plus two literature baselines — SSP (random-pair
// shortest-path sampling) and an SSuM-style summarizer (node grouping +
// edge sparsification) — used for Table VIII.
package compress

import (
	"math/rand"

	"github.com/tdmatch/tdmatch/internal/graph"
)

// subgraphBuilder copies nodes from a source graph into a fresh graph,
// preserving labels, kinds and corpus sides.
type subgraphBuilder struct {
	src *graph.Graph
	dst *graph.Graph
	ids map[graph.NodeID]graph.NodeID
}

func newSubgraphBuilder(src *graph.Graph) *subgraphBuilder {
	return &subgraphBuilder{
		src: src,
		dst: graph.New(src.NumNodes() / 2),
		ids: make(map[graph.NodeID]graph.NodeID, src.NumNodes()/2),
	}
}

func (b *subgraphBuilder) node(old graph.NodeID) graph.NodeID {
	if id, ok := b.ids[old]; ok {
		return id
	}
	var id graph.NodeID
	switch k := b.src.Kind(old); k {
	case graph.Data:
		id = b.dst.EnsureData(b.src.Label(old))
	case graph.External:
		id = b.dst.EnsureExternal(b.src.Label(old))
	default:
		var err error
		id, err = b.dst.AddMeta(b.src.Label(old), k, b.src.CorpusSide(old))
		if err != nil {
			// Label collisions cannot happen: ids map is authoritative and
			// source labels are unique. Resolve defensively anyway.
			if existing, ok := b.dst.MetaNode(b.src.Label(old)); ok {
				id = existing
			}
		}
	}
	b.ids[old] = id
	return id
}

func (b *subgraphBuilder) addPath(path []graph.NodeID) {
	for i, n := range path {
		id := b.node(n)
		if i > 0 {
			b.dst.AddEdge(b.ids[path[i-1]], id)
		}
	}
}

// Options configures the samplers.
type Options struct {
	// Ratio is β in Algorithm 3: iterations = Ratio * |V(G)|.
	Ratio float64
	// Seed drives pair sampling; fixed seeds give reproducible output.
	Seed int64
	// MaxPathsPerPair caps the all-shortest-paths enumeration (default 8).
	MaxPathsPerPair int
}

func (o Options) maxPaths() int {
	if o.MaxPathsPerPair <= 0 {
		return 8
	}
	return o.MaxPathsPerPair
}

// MSP runs Algorithm 3: it samples β·|V| cross-corpus metadata pairs, adds
// all their shortest paths to the output, and finally guarantees that every
// metadata node appears connected through at least one shortest path.
func MSP(g *graph.Graph, opts Options) *graph.Graph {
	rng := rand.New(rand.NewSource(opts.Seed))
	first := g.MetadataNodes(graph.First)
	second := g.MetadataNodes(graph.Second)
	b := newSubgraphBuilder(g)
	if len(first) == 0 || len(second) == 0 {
		// Degenerate: nothing to pair; keep metadata nodes only.
		for _, id := range append(append([]graph.NodeID{}, first...), second...) {
			b.node(id)
		}
		return b.dst
	}
	iters := int(opts.Ratio * float64(g.NumNodes()))
	for i := 0; i < iters; i++ {
		f := first[rng.Intn(len(first))]
		s := second[rng.Intn(len(second))]
		for _, p := range g.AllShortestPaths(f, s, opts.maxPaths()) {
			b.addPath(p)
		}
	}
	ensureConnected(g, b, first, second, rng, opts.maxPaths())
	return b.dst
}

// ensureConnected adds one shortest path for every metadata node that is
// still missing or isolated in the compressed graph.
func ensureConnected(g *graph.Graph, b *subgraphBuilder, first, second []graph.NodeID, rng *rand.Rand, maxPaths int) {
	connect := func(nodes, partners []graph.NodeID) {
		for _, id := range nodes {
			if did, ok := b.ids[id]; ok && b.dst.Degree(did) > 0 {
				continue
			}
			// Try a few random partners before a full scan.
			var path []graph.NodeID
			for try := 0; try < 4 && path == nil; try++ {
				p := partners[rng.Intn(len(partners))]
				path = g.ShortestPath(id, p)
			}
			if path == nil {
				for _, p := range partners {
					if path = g.ShortestPath(id, p); path != nil {
						break
					}
				}
			}
			if path != nil {
				b.addPath(path)
			} else {
				b.node(id) // disconnected in the source graph too
			}
		}
	}
	connect(first, second)
	connect(second, first)
}

// SSP is the exploration-based baseline the paper adapts (Rezvanian &
// Meybodi): identical to MSP but node pairs are drawn uniformly from all
// live nodes rather than from cross-corpus metadata nodes.
func SSP(g *graph.Graph, opts Options) *graph.Graph {
	rng := rand.New(rand.NewSource(opts.Seed))
	var all []graph.NodeID
	g.Nodes(func(id graph.NodeID) { all = append(all, id) })
	b := newSubgraphBuilder(g)
	if len(all) < 2 {
		return b.dst
	}
	iters := int(opts.Ratio * float64(g.NumNodes()))
	for i := 0; i < iters; i++ {
		s := all[rng.Intn(len(all))]
		t := all[rng.Intn(len(all))]
		if s == t {
			continue
		}
		for _, p := range g.AllShortestPaths(s, t, opts.maxPaths()) {
			b.addPath(p)
		}
	}
	return b.dst
}

// SSuM is a summarization-style baseline in the spirit of SSumM (Lee et
// al., KDD 2020): it keeps all metadata nodes, samples a fraction of data
// nodes weighted by degree, and then sparsifies edges uniformly until the
// target ratio is met. It is corpus-agnostic, which is exactly why it
// underperforms MSP on the matching task (Table VIII).
func SSuM(g *graph.Graph, targetNodeRatio float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := newSubgraphBuilder(g)
	var meta, data []graph.NodeID
	g.Nodes(func(id graph.NodeID) {
		if g.Kind(id).IsMetadata() {
			meta = append(meta, id)
		} else {
			data = append(data, id)
		}
	})
	target := int(targetNodeRatio * float64(g.NumNodes()))
	if target < len(meta) {
		target = len(meta)
	}
	// Keep all metadata nodes.
	for _, id := range meta {
		b.node(id)
	}
	// Degree-weighted sampling of data nodes: heavy hubs survive, mirroring
	// how supernode grouping preserves high-degree structure.
	budget := target - len(meta)
	if budget > len(data) {
		budget = len(data)
	}
	totalDeg := 0
	for _, id := range data {
		totalDeg += g.Degree(id)
	}
	kept := make(map[graph.NodeID]struct{}, budget)
	for len(kept) < budget && totalDeg > 0 {
		r := rng.Intn(totalDeg)
		for _, id := range data {
			r -= g.Degree(id)
			if r < 0 {
				kept[id] = struct{}{}
				break
			}
		}
	}
	for id := range kept {
		b.node(id)
	}
	// Re-add edges whose both endpoints survived; sparsify to ~85%.
	g.Edges(func(x, y graph.NodeID) {
		_, okX := b.ids[x]
		_, okY := b.ids[y]
		if okX && okY && rng.Float64() < 0.85 {
			b.dst.AddEdge(b.ids[x], b.ids[y])
		}
	})
	return b.dst
}
