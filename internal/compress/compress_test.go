package compress

import (
	"fmt"
	"testing"

	"github.com/tdmatch/tdmatch/internal/graph"
)

// bipartiteFixture builds a graph with nMeta tuples, nMeta snippets and a
// shared vocabulary; tuple i and snippet i share a dedicated term plus hub
// terms shared by everyone (the ambiguous "audit"-like tokens).
func bipartiteFixture(t *testing.T, nMeta int) *graph.Graph {
	t.Helper()
	g := graph.New(nMeta * 4)
	hub := g.EnsureData("hub")
	for i := 0; i < nMeta; i++ {
		tu, err := g.AddMeta(fmt.Sprintf("t%d", i), graph.Tuple, graph.First)
		if err != nil {
			t.Fatal(err)
		}
		sn, err := g.AddMeta(fmt.Sprintf("p%d", i), graph.Snippet, graph.Second)
		if err != nil {
			t.Fatal(err)
		}
		key := g.EnsureData(fmt.Sprintf("key%d", i))
		noise := g.EnsureData(fmt.Sprintf("noise%d", i))
		g.AddEdge(tu, key)
		g.AddEdge(sn, key)
		g.AddEdge(tu, hub)
		g.AddEdge(sn, hub)
		g.AddEdge(tu, noise)
		// A dangling decoration that shortest paths never need.
		deco := g.EnsureData(fmt.Sprintf("deco%d", i))
		g.AddEdge(noise, deco)
	}
	return g
}

func TestMSPKeepsAllMetadata(t *testing.T) {
	g := bipartiteFixture(t, 10)
	cg := MSP(g, Options{Ratio: 0.25, Seed: 1})
	if got, want := len(cg.MetadataNodes(graph.First)), 10; got != want {
		t.Errorf("first metadata in compressed = %d, want %d", got, want)
	}
	if got, want := len(cg.MetadataNodes(graph.Second)), 10; got != want {
		t.Errorf("second metadata in compressed = %d, want %d", got, want)
	}
	// Every metadata node must be connected (the Algorithm 3 guarantee).
	for _, id := range cg.MetadataNodes(graph.NoSide) {
		if cg.Degree(id) == 0 {
			t.Errorf("metadata node %s isolated after MSP", cg.Label(id))
		}
	}
}

func TestMSPShrinksGraph(t *testing.T) {
	g := bipartiteFixture(t, 30)
	cg := MSP(g, Options{Ratio: 0.25, Seed: 42})
	if cg.NumNodes() >= g.NumNodes() {
		t.Errorf("compressed nodes %d >= original %d", cg.NumNodes(), g.NumNodes())
	}
	if cg.NumEdges() >= g.NumEdges() {
		t.Errorf("compressed edges %d >= original %d", cg.NumEdges(), g.NumEdges())
	}
	// Decorations hang off noise nodes and lie on no metadata-to-metadata
	// shortest path; they must all be gone.
	if _, ok := cg.DataNode("deco0"); ok {
		t.Error("decoration node survived MSP")
	}
}

func TestMSPEdgesComeFromSource(t *testing.T) {
	g := bipartiteFixture(t, 8)
	cg := MSP(g, Options{Ratio: 0.5, Seed: 7})
	cg.Edges(func(a, b graph.NodeID) {
		la, lb := cg.Label(a), cg.Label(b)
		// Find the corresponding source nodes by label.
		sa, okA := g.DataNode(la)
		if !okA {
			sa, okA = g.MetaNode(la)
		}
		sb, okB := g.DataNode(lb)
		if !okB {
			sb, okB = g.MetaNode(lb)
		}
		if !okA || !okB || !g.HasEdge(sa, sb) {
			t.Errorf("compressed edge %s-%s not in source graph", la, lb)
		}
	})
}

func TestMSPMorePairsBiggerGraph(t *testing.T) {
	g := bipartiteFixture(t, 30)
	small := MSP(g, Options{Ratio: 0.05, Seed: 3})
	big := MSP(g, Options{Ratio: 1.5, Seed: 3})
	if small.NumNodes() > big.NumNodes() {
		t.Errorf("ratio 0.05 gave %d nodes > ratio 1.5 gave %d", small.NumNodes(), big.NumNodes())
	}
}

func TestMSPDeterministicForSeed(t *testing.T) {
	g := bipartiteFixture(t, 12)
	a := MSP(g, Options{Ratio: 0.3, Seed: 99})
	b := MSP(g, Options{Ratio: 0.3, Seed: 99})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Errorf("same seed produced different graphs: %d/%d vs %d/%d",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
}

func TestMSPDegenerateNoSecondCorpus(t *testing.T) {
	g := graph.New(4)
	m, _ := g.AddMeta("t0", graph.Tuple, graph.First)
	d := g.EnsureData("x")
	g.AddEdge(m, d)
	cg := MSP(g, Options{Ratio: 1, Seed: 1})
	if got := len(cg.MetadataNodes(graph.First)); got != 1 {
		t.Errorf("metadata preserved = %d, want 1", got)
	}
}

func TestSSPShrinks(t *testing.T) {
	g := bipartiteFixture(t, 20)
	cg := SSP(g, Options{Ratio: 0.15, Seed: 5})
	if cg.NumNodes() == 0 || cg.NumNodes() >= g.NumNodes() {
		t.Errorf("SSP nodes = %d (source %d)", cg.NumNodes(), g.NumNodes())
	}
}

func TestSSPTinyGraph(t *testing.T) {
	g := graph.New(2)
	g.EnsureData("only")
	cg := SSP(g, Options{Ratio: 1, Seed: 1})
	if cg.NumNodes() != 0 {
		t.Errorf("SSP on 1-node graph = %d nodes, want 0", cg.NumNodes())
	}
}

func TestSSuMKeepsMetadataAndShrinks(t *testing.T) {
	g := bipartiteFixture(t, 25)
	cg := SSuM(g, 0.5, 11)
	if got, want := len(cg.MetadataNodes(graph.NoSide)), 50; got != want {
		t.Errorf("SSuM metadata = %d, want %d", got, want)
	}
	if cg.NumNodes() >= g.NumNodes() {
		t.Errorf("SSuM nodes %d >= source %d", cg.NumNodes(), g.NumNodes())
	}
	// Node budget respected within metadata floor.
	target := int(0.5*float64(g.NumNodes())) + 1
	if cg.NumNodes() > target {
		t.Errorf("SSuM nodes %d > target %d", cg.NumNodes(), target)
	}
}

func TestSSuMTargetBelowMetadataCount(t *testing.T) {
	g := bipartiteFixture(t, 10)
	cg := SSuM(g, 0.01, 2)
	// Metadata nodes are a floor: all 20 survive.
	if got := len(cg.MetadataNodes(graph.NoSide)); got != 20 {
		t.Errorf("metadata floor broken: %d", got)
	}
}

func TestSubgraphBuilderPreservesKinds(t *testing.T) {
	g := bipartiteFixture(t, 3)
	ext := g.EnsureExternal("wiki entity")
	hub, _ := g.DataNode("hub")
	g.AddEdge(ext, hub)
	b := newSubgraphBuilder(g)
	b.addPath([]graph.NodeID{ext, hub})
	nid, ok := b.dst.DataNode("wiki entity")
	if !ok || b.dst.Kind(nid) != graph.External {
		t.Errorf("external kind lost: ok=%v kind=%v", ok, b.dst.Kind(nid))
	}
	tu, _ := g.MetaNode("t0")
	b.node(tu)
	mid, ok := b.dst.MetaNode("t0")
	if !ok || b.dst.Kind(mid) != graph.Tuple || b.dst.CorpusSide(mid) != graph.First {
		t.Error("metadata kind/side lost in subgraph")
	}
}
