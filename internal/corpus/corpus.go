// Package corpus defines the document model shared by every stage of the
// pipeline. A corpus is one of three kinds (paper §II): a relational table
// whose documents are tuples, a structured text whose documents are
// hierarchy nodes (e.g. taxonomy concepts), or plain text whose documents
// are user-defined snippets (sentences or paragraphs).
package corpus

import (
	"fmt"

	"github.com/tdmatch/tdmatch/internal/textproc"
)

// Kind identifies the structure of a corpus.
type Kind uint8

const (
	// Text is a corpus of free-text documents (sentences or paragraphs).
	Text Kind = iota
	// Table is a relational table; each document is one tuple.
	Table
	// Structured is hierarchical text (e.g. a taxonomy); each document is a
	// node and carries a parent reference.
	Structured
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Text:
		return "text"
	case Table:
		return "table"
	case Structured:
		return "structured"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is one attribute value of a document. For text corpora Column is
// empty and Text holds the whole snippet; for tables Column names the
// attribute the value belongs to.
type Value struct {
	Column string
	Text   string
}

// Document is the unit of matching: a tuple, a taxonomy node, or a text
// snippet. IDs must be unique within their corpus.
type Document struct {
	ID     string
	Values []Value
	// Parent is the ID of the parent document for Structured corpora; empty
	// for roots and for other corpus kinds.
	Parent string
}

// Text concatenates all values of the document, space separated. It is the
// serialization used by text-oriented baselines.
func (d Document) Text() string {
	switch len(d.Values) {
	case 0:
		return ""
	case 1:
		return d.Values[0].Text
	}
	n := 0
	for _, v := range d.Values {
		n += len(v.Text) + 1
	}
	buf := make([]byte, 0, n)
	for i, v := range d.Values {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, v.Text...)
	}
	return string(buf)
}

// Serialize renders the document in the [COL] c [VAL] v format used by the
// paper when feeding tuples to sequence baselines (§V-A).
func (d Document) Serialize() string {
	n := 0
	for _, v := range d.Values {
		n += len(v.Column) + len(v.Text) + 12
	}
	buf := make([]byte, 0, n)
	for _, v := range d.Values {
		if v.Column != "" {
			buf = append(buf, "[COL] "...)
			buf = append(buf, v.Column...)
			buf = append(buf, ' ')
		}
		buf = append(buf, "[VAL] "...)
		buf = append(buf, v.Text...)
		buf = append(buf, ' ')
	}
	if len(buf) > 0 {
		buf = buf[:len(buf)-1]
	}
	return string(buf)
}

// Corpus is an ordered collection of documents of one kind.
type Corpus struct {
	Name string
	Kind Kind
	Docs []Document
	// Columns lists the table attributes in schema order (Table kind only).
	Columns []string

	byID map[string]int
}

// NewText builds a text corpus; snippet i gets ID "<name>:p<i>" unless ids
// is non-nil, in which case ids[i] is used.
func NewText(name string, snippets []string, ids []string) (*Corpus, error) {
	if ids != nil && len(ids) != len(snippets) {
		return nil, fmt.Errorf("corpus %s: %d ids for %d snippets", name, len(ids), len(snippets))
	}
	c := &Corpus{Name: name, Kind: Text, Docs: make([]Document, len(snippets))}
	for i, s := range snippets {
		id := fmt.Sprintf("%s:p%d", name, i)
		if ids != nil {
			id = ids[i]
		}
		c.Docs[i] = Document{ID: id, Values: []Value{{Text: s}}}
	}
	return c, c.buildIndex()
}

// NewTable builds a table corpus from a schema and rows. Row i gets ID
// "<name>:t<i>" unless ids is provided. Rows shorter than the schema are
// padded with empty values; longer rows are an error.
func NewTable(name string, columns []string, rows [][]string, ids []string) (*Corpus, error) {
	if ids != nil && len(ids) != len(rows) {
		return nil, fmt.Errorf("corpus %s: %d ids for %d rows", name, len(ids), len(rows))
	}
	c := &Corpus{Name: name, Kind: Table, Columns: columns, Docs: make([]Document, len(rows))}
	for i, row := range rows {
		if len(row) > len(columns) {
			return nil, fmt.Errorf("corpus %s: row %d has %d values for %d columns", name, i, len(row), len(columns))
		}
		id := fmt.Sprintf("%s:t%d", name, i)
		if ids != nil {
			id = ids[i]
		}
		vals := make([]Value, len(columns))
		for j := range columns {
			v := ""
			if j < len(row) {
				v = row[j]
			}
			vals[j] = Value{Column: columns[j], Text: v}
		}
		c.Docs[i] = Document{ID: id, Values: vals}
	}
	return c, c.buildIndex()
}

// Node is one element of a structured-text corpus: a labelled hierarchy
// node with an optional parent.
type Node struct {
	ID     string
	Text   string
	Parent string
}

// NewStructured builds a structured-text corpus (taxonomy). Parents must
// either be empty or reference a node present in the slice.
func NewStructured(name string, nodes []Node) (*Corpus, error) {
	c := &Corpus{Name: name, Kind: Structured, Docs: make([]Document, len(nodes))}
	ids := make(map[string]struct{}, len(nodes))
	for i, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("corpus %s: node %d has empty ID", name, i)
		}
		ids[n.ID] = struct{}{}
		c.Docs[i] = Document{ID: n.ID, Values: []Value{{Text: n.Text}}, Parent: n.Parent}
	}
	for _, n := range nodes {
		if n.Parent == "" {
			continue
		}
		if _, ok := ids[n.Parent]; !ok {
			return nil, fmt.Errorf("corpus %s: node %s references unknown parent %s", name, n.ID, n.Parent)
		}
	}
	return c, c.buildIndex()
}

func (c *Corpus) buildIndex() error {
	c.byID = make(map[string]int, len(c.Docs))
	for i, d := range c.Docs {
		if _, dup := c.byID[d.ID]; dup {
			return fmt.Errorf("corpus %s: duplicate document ID %s", c.Name, d.ID)
		}
		c.byID[d.ID] = i
	}
	return nil
}

// Append adds one document at the end of the corpus (the delta-ingest
// path). The ID must be new; for tables the values must not exceed the
// schema (shorter documents keep their given values as-is).
func (c *Corpus) Append(d Document) error {
	if d.ID == "" {
		return fmt.Errorf("corpus %s: append with empty document ID", c.Name)
	}
	if _, dup := c.byID[d.ID]; dup {
		return fmt.Errorf("corpus %s: duplicate document ID %s", c.Name, d.ID)
	}
	if c.Kind == Table && len(d.Values) > len(c.Columns) {
		return fmt.Errorf("corpus %s: document %s has %d values for %d columns",
			c.Name, d.ID, len(d.Values), len(c.Columns))
	}
	if c.Kind == Structured && d.Parent != "" {
		if _, ok := c.byID[d.Parent]; !ok {
			return fmt.Errorf("corpus %s: document %s references unknown parent %s", c.Name, d.ID, d.Parent)
		}
	}
	c.byID[d.ID] = len(c.Docs)
	c.Docs = append(c.Docs, d)
	return nil
}

// Remove deletes the document with the given ID, preserving the order
// of the remaining documents, and reports whether it was present.
func (c *Corpus) Remove(id string) bool {
	i, ok := c.byID[id]
	if !ok {
		return false
	}
	c.Docs = append(c.Docs[:i], c.Docs[i+1:]...)
	delete(c.byID, id)
	for j := i; j < len(c.Docs); j++ {
		c.byID[c.Docs[j].ID] = j
	}
	return true
}

// RemoveBatch deletes all given IDs in one compaction pass — removing m
// documents costs O(n + m) instead of the O(m·n) of per-ID Remove calls
// re-indexing the tail each time. Unknown IDs are ignored; the number
// of documents actually removed is returned.
func (c *Corpus) RemoveBatch(ids []string) int {
	victims := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		if _, ok := c.byID[id]; ok {
			victims[id] = struct{}{}
		}
	}
	removed := len(victims)
	if removed == 0 {
		return 0
	}
	keep := c.Docs[:0]
	for _, d := range c.Docs {
		if _, dead := victims[d.ID]; !dead {
			keep = append(keep, d)
		}
	}
	c.Docs = keep
	c.byID = make(map[string]int, len(keep))
	for i, d := range keep {
		c.byID[d.ID] = i
	}
	return removed
}

// Clone returns an independent copy of the corpus: the ingest
// clone-mutate-swap path appends to or removes from the clone while the
// original keeps serving. Document values are immutable and shared.
func (c *Corpus) Clone() *Corpus {
	nc := &Corpus{
		Name:    c.Name,
		Kind:    c.Kind,
		Docs:    append([]Document(nil), c.Docs...),
		Columns: c.Columns,
		byID:    make(map[string]int, len(c.byID)),
	}
	for id, i := range c.byID {
		nc.byID[id] = i
	}
	return nc
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// Doc returns the document with the given ID.
func (c *Corpus) Doc(id string) (Document, bool) {
	i, ok := c.byID[id]
	if !ok {
		return Document{}, false
	}
	return c.Docs[i], true
}

// IDs returns all document IDs in corpus order.
func (c *Corpus) IDs() []string {
	out := make([]string, len(c.Docs))
	for i, d := range c.Docs {
		out[i] = d.ID
	}
	return out
}

// DistinctTokens counts the distinct processed tokens across the corpus.
// Graph creation starts data-node creation from the corpus with the smaller
// distinct-token count (paper §II-B) and filters the other corpus.
func (c *Corpus) DistinctTokens(pre textproc.Preprocessor) int {
	seen := make(map[string]struct{})
	for _, d := range c.Docs {
		for _, v := range d.Values {
			for _, t := range pre.Tokens(v.Text) {
				seen[t] = struct{}{}
			}
		}
	}
	return len(seen)
}

// Paths returns, for a structured corpus, the root-to-node ID path of every
// document (inclusive). For roots the path is just the node itself. Used by
// the taxonomy evaluation measures (paper §V-B).
func (c *Corpus) Paths() map[string][]string {
	out := make(map[string][]string, len(c.Docs))
	var walk func(id string) []string
	walk = func(id string) []string {
		if p, ok := out[id]; ok {
			return p
		}
		d, ok := c.Doc(id)
		if !ok {
			return nil
		}
		var path []string
		if d.Parent != "" {
			parent := walk(d.Parent)
			path = append(append([]string{}, parent...), id)
		} else {
			path = []string{id}
		}
		out[id] = path
		return path
	}
	for _, d := range c.Docs {
		walk(d.ID)
	}
	return out
}
