package corpus

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadDispatchCSV(t *testing.T) {
	path := writeTemp(t, "movies.csv", "title,director\nPulp Fiction,Tarantino\n")
	c, err := Load(path, "movies")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Table || c.Len() != 1 {
		t.Errorf("kind=%v len=%d", c.Kind, c.Len())
	}
}

func TestLoadDispatchTSV(t *testing.T) {
	path := writeTemp(t, "movies.tsv", "title\tdirector\nPulp Fiction\tTarantino\n")
	c, err := Load(path, "movies")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Table || c.Docs[0].Values[1].Text != "Tarantino" {
		t.Errorf("tsv parse wrong: %+v", c.Docs[0])
	}
}

func TestLoadDispatchJSON(t *testing.T) {
	path := writeTemp(t, "tax.json", `[{"id":"r","text":"root"},{"id":"a","text":"leaf","parent":"r"}]`)
	c, err := Load(path, "tax")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Structured || c.Len() != 2 {
		t.Errorf("kind=%v len=%d", c.Kind, c.Len())
	}
}

func TestLoadDispatchText(t *testing.T) {
	path := writeTemp(t, "notes.txt", "first doc\nsecond doc\n")
	c, err := Load(path, "notes")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Text || c.Len() != 2 {
		t.Errorf("kind=%v len=%d", c.Kind, c.Len())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.csv"), "x"); err == nil {
		t.Error("want error for missing file")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json"), "x"); err == nil {
		t.Error("want error for missing json")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.txt"), "x"); err == nil {
		t.Error("want error for missing text")
	}
}

func TestLoadBadJSON(t *testing.T) {
	path := writeTemp(t, "bad.json", `{"not": "an array"}`)
	if _, err := Load(path, "x"); err == nil {
		t.Error("want error for non-array json")
	}
}

func TestLoadCSVFromDisk(t *testing.T) {
	path := writeTemp(t, "with_id.csv", "id,name\nx1,alpha\nx2,beta\n")
	c, err := LoadCSV(path, "t", "id", ',')
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Doc("x2"); !ok {
		t.Error("id column ignored")
	}
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "missing.csv"), "t", "", ','); err == nil {
		t.Error("want error for missing file")
	}
}

func TestLoadTextLinesFromDisk(t *testing.T) {
	path := writeTemp(t, "docs.txt", "a\n\nb\n")
	c, err := LoadTextLines(path, "docs")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLoadStructuredJSONFromDisk(t *testing.T) {
	path := writeTemp(t, "tax.json", `[{"id":"r","text":"root"}]`)
	c, err := LoadStructuredJSON(path, "tax")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	if _, err := LoadStructuredJSON(filepath.Join(t.TempDir(), "m.json"), "tax"); err == nil {
		t.Error("want error for missing file")
	}
}
