package corpus

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// LoadCSV reads a table corpus from a CSV (or TSV) file. The first record
// is the header. When idColumn is non-empty that column provides document
// IDs (and is still kept as a value); otherwise row numbers are used.
func LoadCSV(path, name, idColumn string, comma rune) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, idColumn, comma)
}

// ReadCSV is LoadCSV over an io.Reader.
func ReadCSV(r io.Reader, name, idColumn string, comma rune) (*Corpus, error) {
	cr := csv.NewReader(r)
	if comma != 0 {
		cr.Comma = comma
	}
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("corpus %s: reading header: %w", name, err)
	}
	idIdx := -1
	if idColumn != "" {
		for i, h := range header {
			if h == idColumn {
				idIdx = i
				break
			}
		}
		if idIdx < 0 {
			return nil, fmt.Errorf("corpus %s: id column %q not in header %v", name, idColumn, header)
		}
	}
	var rows [][]string
	var ids []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("corpus %s: %w", name, err)
		}
		if idIdx >= 0 && idIdx < len(rec) {
			ids = append(ids, rec[idIdx])
		}
		rows = append(rows, rec)
	}
	if idIdx >= 0 {
		return NewTable(name, header, rows, ids)
	}
	return NewTable(name, header, rows, nil)
}

// LoadTextLines reads a text corpus with one document per non-empty line.
func LoadTextLines(path, name string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTextLines(f, name)
}

// ReadTextLines is LoadTextLines over an io.Reader.
func ReadTextLines(r io.Reader, name string) (*Corpus, error) {
	var snippets []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			snippets = append(snippets, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus %s: %w", name, err)
	}
	return NewText(name, snippets, nil)
}

// jsonNode mirrors Node for the structured-corpus JSON format:
// an array of {"id": ..., "text": ..., "parent": ...} objects.
type jsonNode struct {
	ID     string `json:"id"`
	Text   string `json:"text"`
	Parent string `json:"parent,omitempty"`
}

// LoadStructuredJSON reads a taxonomy corpus from a JSON array of nodes.
func LoadStructuredJSON(path, name string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStructuredJSON(f, name)
}

// ReadStructuredJSON is LoadStructuredJSON over an io.Reader.
func ReadStructuredJSON(r io.Reader, name string) (*Corpus, error) {
	var raw []jsonNode
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("corpus %s: %w", name, err)
	}
	nodes := make([]Node, len(raw))
	for i, n := range raw {
		nodes[i] = Node{ID: n.ID, Text: n.Text, Parent: n.Parent}
	}
	return NewStructured(name, nodes)
}

// Load dispatches on the file extension: .csv and .tsv become tables,
// .json becomes a structured corpus, anything else is read as text lines.
func Load(path, name string) (*Corpus, error) {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return LoadCSV(path, name, "", ',')
	case ".tsv":
		return LoadCSV(path, name, "", '\t')
	case ".json":
		return LoadStructuredJSON(path, name)
	default:
		return LoadTextLines(path, name)
	}
}
