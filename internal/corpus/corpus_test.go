package corpus

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/tdmatch/tdmatch/internal/textproc"
)

func TestNewText(t *testing.T) {
	c, err := NewText("rev", []string{"first snippet", "second snippet"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Docs[0].ID != "rev:p0" || c.Docs[1].ID != "rev:p1" {
		t.Errorf("auto IDs wrong: %v %v", c.Docs[0].ID, c.Docs[1].ID)
	}
	d, ok := c.Doc("rev:p1")
	if !ok || d.Text() != "second snippet" {
		t.Errorf("Doc lookup failed: %v %v", d, ok)
	}
}

func TestNewTextCustomIDs(t *testing.T) {
	c, err := NewText("rev", []string{"a", "b"}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Doc("x"); !ok {
		t.Error("custom ID x not found")
	}
	if _, err := NewText("rev", []string{"a"}, []string{"x", "y"}); err == nil {
		t.Error("want error on mismatched ids length")
	}
}

func TestNewTextDuplicateIDs(t *testing.T) {
	if _, err := NewText("rev", []string{"a", "b"}, []string{"x", "x"}); err == nil {
		t.Error("want error on duplicate IDs")
	}
}

func TestNewTable(t *testing.T) {
	c, err := NewTable("movies", []string{"title", "director"},
		[][]string{{"The Sixth Sense", "Shyamalan"}, {"Pulp Fiction", "Tarantino"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Table || c.Len() != 2 {
		t.Fatalf("kind=%v len=%d", c.Kind, c.Len())
	}
	d := c.Docs[0]
	if d.Values[0].Column != "title" || d.Values[0].Text != "The Sixth Sense" {
		t.Errorf("values = %v", d.Values)
	}
	if got := d.Text(); got != "The Sixth Sense Shyamalan" {
		t.Errorf("Text = %q", got)
	}
}

func TestTableShortRowPadding(t *testing.T) {
	c, err := NewTable("t", []string{"a", "b", "c"}, [][]string{{"1"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs[0].Values) != 3 || c.Docs[0].Values[2].Text != "" {
		t.Errorf("padding failed: %v", c.Docs[0].Values)
	}
	if _, err := NewTable("t", []string{"a"}, [][]string{{"1", "2"}}, nil); err == nil {
		t.Error("want error on too-long row")
	}
}

func TestSerialize(t *testing.T) {
	c, _ := NewTable("m", []string{"title", "director"},
		[][]string{{"The Sixth Sense", "Shyamalan"}}, nil)
	got := c.Docs[0].Serialize()
	want := "[COL] title [VAL] The Sixth Sense [COL] director [VAL] Shyamalan"
	if got != want {
		t.Errorf("Serialize = %q, want %q", got, want)
	}
	text, _ := NewText("p", []string{"hello"}, nil)
	if got := text.Docs[0].Serialize(); got != "[VAL] hello" {
		t.Errorf("text Serialize = %q", got)
	}
}

func TestNewStructured(t *testing.T) {
	nodes := []Node{
		{ID: "root", Text: "Audit"},
		{ID: "a", Text: "Audit programme", Parent: "root"},
		{ID: "b", Text: "ISO 19001", Parent: "a"},
	}
	c, err := NewStructured("tax", nodes)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Structured {
		t.Fatalf("kind = %v", c.Kind)
	}
	d, _ := c.Doc("b")
	if d.Parent != "a" {
		t.Errorf("parent = %q", d.Parent)
	}
}

func TestStructuredValidation(t *testing.T) {
	if _, err := NewStructured("t", []Node{{ID: "", Text: "x"}}); err == nil {
		t.Error("want error on empty ID")
	}
	if _, err := NewStructured("t", []Node{{ID: "a", Parent: "ghost"}}); err == nil {
		t.Error("want error on unknown parent")
	}
}

func TestPaths(t *testing.T) {
	nodes := []Node{
		{ID: "r", Text: "root"},
		{ID: "a", Text: "a", Parent: "r"},
		{ID: "b", Text: "b", Parent: "a"},
		{ID: "c", Text: "c", Parent: "b"},
		{ID: "x", Text: "x", Parent: "r"},
	}
	c, err := NewStructured("tax", nodes)
	if err != nil {
		t.Fatal(err)
	}
	paths := c.Paths()
	if !reflect.DeepEqual(paths["c"], []string{"r", "a", "b", "c"}) {
		t.Errorf("path(c) = %v", paths["c"])
	}
	if !reflect.DeepEqual(paths["r"], []string{"r"}) {
		t.Errorf("path(r) = %v", paths["r"])
	}
	if !reflect.DeepEqual(paths["x"], []string{"r", "x"}) {
		t.Errorf("path(x) = %v", paths["x"])
	}
}

func TestDistinctTokens(t *testing.T) {
	c, _ := NewText("p", []string{"the movie movie", "a great movie"}, nil)
	pre := textproc.Preprocessor{MaxNGram: 1} // no stop removal, no stemming
	// tokens: the, movie, a, great → 4 distinct
	if got := c.DistinctTokens(pre); got != 4 {
		t.Errorf("DistinctTokens = %d, want 4", got)
	}
	pre2 := textproc.DefaultPreprocessor()
	// stop words removed: movie(→movi), great → 2
	if got := c.DistinctTokens(pre2); got != 2 {
		t.Errorf("DistinctTokens = %d, want 2", got)
	}
}

func TestIDs(t *testing.T) {
	c, _ := NewText("p", []string{"a", "b", "c"}, nil)
	if got := c.IDs(); !reflect.DeepEqual(got, []string{"p:p0", "p:p1", "p:p2"}) {
		t.Errorf("IDs = %v", got)
	}
}

func TestReadCSV(t *testing.T) {
	data := "title,director\nThe Sixth Sense,Shyamalan\nPulp Fiction,Tarantino\n"
	c, err := ReadCSV(strings.NewReader(data), "movies", "", ',')
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Columns[1] != "director" {
		t.Fatalf("csv corpus wrong: %+v", c)
	}
}

func TestReadCSVWithIDColumn(t *testing.T) {
	data := "id,title\nm1,The Sixth Sense\nm2,Pulp Fiction\n"
	c, err := ReadCSV(strings.NewReader(data), "movies", "id", ',')
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Doc("m2"); !ok {
		t.Error("id column not used for document IDs")
	}
}

func TestReadCSVMissingIDColumn(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "x", "nope", ','); err == nil {
		t.Error("want error for missing id column")
	}
}

func TestReadTextLines(t *testing.T) {
	c, err := ReadTextLines(strings.NewReader("first\n\n  \nsecond\n"), "txt")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (blank lines skipped)", c.Len())
	}
}

func TestReadStructuredJSON(t *testing.T) {
	data := `[{"id":"r","text":"root"},{"id":"a","text":"child","parent":"r"}]`
	c, err := ReadStructuredJSON(strings.NewReader(data), "tax")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := c.Doc("a")
	if !ok || d.Parent != "r" {
		t.Errorf("json corpus wrong: %+v ok=%v", d, ok)
	}
}

func TestKindString(t *testing.T) {
	if Text.String() != "text" || Table.String() != "table" || Structured.String() != "structured" {
		t.Error("Kind.String labels wrong")
	}
}

func TestAppendRemoveClone(t *testing.T) {
	c, err := NewText("c", []string{"one", "two", "three"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Append(Document{ID: "c:p3", Values: []Value{{Text: "four"}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(Document{ID: "c:p0"}); err == nil {
		t.Error("duplicate append must fail")
	}
	if err := c.Append(Document{}); err == nil {
		t.Error("empty-ID append must fail")
	}
	clone := c.Clone()
	if !c.Remove("c:p1") {
		t.Fatal("remove of live doc failed")
	}
	if c.Remove("c:p1") {
		t.Error("double remove reported success")
	}
	// Order and index survive the removal.
	wantIDs := []string{"c:p0", "c:p2", "c:p3"}
	gotIDs := c.IDs()
	for i, id := range wantIDs {
		if gotIDs[i] != id {
			t.Fatalf("IDs after remove = %v", gotIDs)
		}
		if d, ok := c.Doc(id); !ok || d.ID != id {
			t.Fatalf("Doc(%s) broken after remove", id)
		}
	}
	// The clone kept the pre-removal state.
	if clone.Len() != 4 {
		t.Errorf("clone length = %d, want 4", clone.Len())
	}
	if _, ok := clone.Doc("c:p1"); !ok {
		t.Error("removal leaked into the clone")
	}
}

func TestRemoveBatchMatchesPerIDRemove(t *testing.T) {
	ids := make([]string, 50)
	texts := make([]string, 50)
	for i := range ids {
		ids[i] = fmt.Sprintf("d%02d", i)
		texts[i] = fmt.Sprintf("text %d", i)
	}
	batch, err := NewText("c", texts, ids)
	if err != nil {
		t.Fatal(err)
	}
	serial := batch.Clone()
	victims := []string{"d03", "d07", "d07", "d49", "nosuch", "d00"}
	if got := batch.RemoveBatch(victims); got != 4 {
		t.Fatalf("RemoveBatch = %d, want 4", got)
	}
	for _, id := range victims {
		serial.Remove(id)
	}
	if !reflect.DeepEqual(batch.IDs(), serial.IDs()) {
		t.Fatalf("batch removal diverged:\nbatch:  %v\nserial: %v", batch.IDs(), serial.IDs())
	}
	for _, id := range batch.IDs() {
		if d, ok := batch.Doc(id); !ok || d.ID != id {
			t.Fatalf("index broken for %s after RemoveBatch", id)
		}
	}
	if batch.RemoveBatch([]string{"nosuch"}) != 0 {
		t.Error("RemoveBatch of unknowns must remove nothing")
	}
}
