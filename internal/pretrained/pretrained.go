// Package pretrained provides the stand-in for the paper's pre-trained
// resources: Wikipedia2Vec (used to merge synonym data nodes with a cosine
// threshold γ, §II-C) and SentenceBERT (the unsupervised S-BE baseline,
// §V). In the offline reproduction, a Word2Vec model is trained once on a
// large synthetic "general corpus" generated from the scenario's world
// vocabulary plus generic filler text; it therefore behaves like a real
// pre-trained model — strong on generic words that the general corpus
// covers, blind to domain-specific vocabulary — which is the contrast the
// paper's experiments measure.
package pretrained

import (
	"sort"
	"strings"

	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/textproc"
)

// Model is a pre-trained word-embedding model with sentence aggregation.
type Model struct {
	tm  *embed.TextModel
	pre textproc.Preprocessor
}

// Train fits the model on a general corpus of sentences. The preprocessor
// must match the one used to create graph terms so that merging compares
// like with like.
func Train(sentences [][]string, cfg embed.Config) (*Model, error) {
	tm, err := embed.TrainText(sentences, 2, cfg)
	if err != nil {
		return nil, err
	}
	return &Model{tm: tm, pre: textproc.DefaultPreprocessor()}, nil
}

// Vocabulary returns the number of known tokens.
func (m *Model) Vocabulary() int { return m.tm.Vocab.Size() }

// Dim returns the vector dimensionality.
func (m *Model) Dim() int { return m.tm.Model.Dim }

// Vector returns the token embedding or nil when unknown.
func (m *Model) Vector(token string) []float32 { return m.tm.Vector(token) }

// TermVector embeds a (possibly multi-token) term as the mean of its known
// token vectors; nil when no token is known.
func (m *Model) TermVector(term string) []float32 {
	toks := strings.Fields(term)
	var vecs [][]float32
	for _, t := range toks {
		if v := m.tm.Vector(t); v != nil {
			vecs = append(vecs, v)
		}
	}
	if len(vecs) == 0 {
		return nil
	}
	return embed.Mean(vecs, m.tm.Model.Dim)
}

// SentenceVector embeds raw text: pre-process, look up, average. It is the
// S-BE substitute used as the unsupervised pre-trained baseline.
func (m *Model) SentenceVector(text string) []float32 {
	return m.TermVector(strings.Join(m.pre.Tokens(text), " "))
}

// Similarity is the cosine similarity between two term embeddings (0 when
// either is unknown).
func (m *Model) Similarity(a, b string) float64 {
	va, vb := m.TermVector(a), m.TermVector(b)
	if va == nil || vb == nil {
		return 0
	}
	return embed.Cosine(va, vb)
}

// CalibrateGamma reproduces the paper's threshold calibration (§II-C):
// γ is the average cosine similarity between known synonym pairs in the
// pre-trained model (the paper uses 17K WordNet pairs and lands on 0.57
// for Wikipedia2Vec). Pairs with unknown terms are skipped; fallback 0.57
// when nothing is measurable.
func (m *Model) CalibrateGamma(pairs [][2]string) float64 {
	var sum float64
	n := 0
	for _, p := range pairs {
		va, vb := m.TermVector(p[0]), m.TermVector(p[1])
		if va == nil || vb == nil {
			continue
		}
		sum += embed.Cosine(va, vb)
		n++
	}
	if n == 0 {
		return 0.57
	}
	return sum / float64(n)
}

// Merger returns a graph.Merger-compatible merger that unifies terms whose
// embeddings exceed the cosine threshold gamma. Candidate pairs are
// restricted to terms that share a token or differ by an edit distance of
// at most two (the name-variant and typo cases of §II-C); an all-pairs
// comparison over the full vocabulary would merge unrelated frequent terms
// and is quadratic besides.
func (m *Model) Merger(gamma float64) *Merger {
	return &Merger{model: m, gamma: gamma}
}

// Merger implements embedding-threshold merging of data nodes.
type Merger struct {
	model *Model
	gamma float64
}

// Merge returns a term → canonical mapping over the candidate pairs whose
// cosine similarity clears γ, using union-find with the lexicographically
// smallest member as canonical representative.
func (mg *Merger) Merge(terms []string) map[string]string {
	parent := make(map[string]string, len(terms))
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	for _, pair := range candidatePairs(terms) {
		a, b := pair[0], pair[1]
		if mg.model.Similarity(a, b) >= mg.gamma {
			union(a, b)
		}
	}
	out := make(map[string]string)
	for _, t := range terms {
		if r := find(t); r != t {
			out[t] = r
		}
	}
	return out
}

// candidatePairs generates merge candidates: terms sharing a token, and
// single-token terms within edit distance 2 that share a first letter
// (the typo heuristic used instead of a quadratic scan).
func candidatePairs(terms []string) [][2]string {
	var pairs [][2]string
	seen := map[[2]string]struct{}{}
	addPair := func(a, b string) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		k := [2]string{a, b}
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		pairs = append(pairs, k)
	}
	// Token-sharing index: "bruce willis" and "b willis" share "willis".
	byToken := map[string][]string{}
	for _, t := range terms {
		for _, tok := range strings.Fields(t) {
			byToken[tok] = append(byToken[tok], t)
		}
	}
	for _, group := range byToken {
		if len(group) > 50 {
			continue // hub tokens generate useless quadratic pairs
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				addPair(group[i], group[j])
			}
		}
	}
	// Typo candidates: single tokens bucketed by first letter and length.
	byBucket := map[string][]string{}
	for _, t := range terms {
		if strings.ContainsRune(t, ' ') || len(t) < 4 {
			continue
		}
		key := t[:1]
		byBucket[key] = append(byBucket[key], t)
	}
	var keys []string
	for k := range byBucket {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		group := byBucket[k]
		if len(group) > 200 {
			continue
		}
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				d := len(a) - len(b)
				if d < -2 || d > 2 {
					continue
				}
				if editDistanceAtMost(a, b, 2) {
					addPair(a, b)
				}
			}
		}
	}
	return pairs
}

// editDistanceAtMost reports whether the Levenshtein distance between a and
// b is <= limit, with early exit on band overflow.
func editDistanceAtMost(a, b string, limit int) bool {
	la, lb := len(a), len(b)
	if la-lb > limit || lb-la > limit {
		return false
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > limit {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[lb] <= limit
}
