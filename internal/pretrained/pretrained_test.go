package pretrained

import (
	"testing"

	"github.com/tdmatch/tdmatch/internal/embed"
)

// generalCorpus simulates a pre-training corpus where movie words co-occur
// and health words co-occur.
func generalCorpus() [][]string {
	var sents [][]string
	for i := 0; i < 150; i++ {
		sents = append(sents,
			[]string{"movi", "director", "actor", "film", "star"},
			[]string{"film", "star", "movi", "actor", "director"},
			[]string{"virus", "case", "death", "countri", "spread"},
			[]string{"spread", "countri", "virus", "death", "case"},
		)
	}
	return sents
}

func trainModel(t *testing.T) *Model {
	t.Helper()
	m, err := Train(generalCorpus(), embed.Config{Dim: 16, Window: 3, Epochs: 3, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelClustersDomains(t *testing.T) {
	m := trainModel(t)
	if m.Similarity("movi", "actor") <= m.Similarity("movi", "virus") {
		t.Error("pre-trained model failed to cluster domains")
	}
	if m.Vocabulary() == 0 || m.Dim() != 16 {
		t.Errorf("Vocabulary=%d Dim=%d", m.Vocabulary(), m.Dim())
	}
}

func TestModelUnknownToken(t *testing.T) {
	m := trainModel(t)
	if m.Vector("pdca") != nil {
		t.Error("domain acronym must be unknown to the general model")
	}
	if m.TermVector("pdca zzz") != nil {
		t.Error("fully unknown term must be nil")
	}
	if m.Similarity("pdca", "movi") != 0 {
		t.Error("similarity with unknown must be 0")
	}
}

func TestTermVectorMultiToken(t *testing.T) {
	m := trainModel(t)
	v := m.TermVector("movi director")
	if v == nil {
		t.Fatal("multi-token term vector nil")
	}
	// Partial knowledge: one known token suffices.
	if m.TermVector("movi zzzunknown") == nil {
		t.Error("partially known term must embed")
	}
}

func TestSentenceVector(t *testing.T) {
	m := trainModel(t)
	// Raw text path applies the preprocessor ("movies" stems to "movi").
	v := m.SentenceVector("The movies and their directors")
	if v == nil {
		t.Fatal("SentenceVector nil for known stems")
	}
	sim := embed.Cosine(v, m.TermVector("movi"))
	if sim <= 0.3 {
		t.Errorf("sentence vector far from its domain: %f", sim)
	}
}

func TestCalibrateGamma(t *testing.T) {
	m := trainModel(t)
	pairs := [][2]string{{"movi", "film"}, {"case", "death"}}
	gamma := m.CalibrateGamma(pairs)
	if gamma <= 0 || gamma > 1 {
		t.Errorf("gamma = %f out of range", gamma)
	}
	// No measurable pairs: fall back to the paper's 0.57.
	if g := m.CalibrateGamma([][2]string{{"zz", "qq"}}); g != 0.57 {
		t.Errorf("fallback gamma = %f", g)
	}
}

func TestMergerMergesNameVariants(t *testing.T) {
	m := trainModel(t)
	// "movi director" and "director" share a token and have high cosine;
	// with a permissive threshold they merge, with an impossible one not.
	terms := []string{"director", "movi director", "virus"}
	merged := m.Merger(0.5).Merge(terms)
	if merged["movi director"] != "director" && merged["director"] != "movi director" {
		// Either direction is acceptable as long as they share a canonical.
		if len(merged) == 0 {
			t.Errorf("no merge at gamma 0.5: %v", merged)
		}
	}
	if got := m.Merger(1.01).Merge(terms); len(got) != 0 {
		t.Errorf("impossible gamma still merged: %v", got)
	}
}

func TestMergerDoesNotMergeAcrossDomains(t *testing.T) {
	m := trainModel(t)
	terms := []string{"movi star", "virus star"} // share token "star"
	merged := m.Merger(0.95).Merge(terms)
	if len(merged) != 0 {
		t.Errorf("cross-domain merge at strict gamma: %v", merged)
	}
}

func TestEditDistanceAtMost(t *testing.T) {
	cases := []struct {
		a, b  string
		limit int
		want  bool
	}{
		{"italy", "itly", 2, true},
		{"italy", "italy", 2, true},
		{"italy", "german", 2, false},
		{"frence", "france", 2, true},
		{"abcdef", "abc", 2, false},
		{"", "ab", 2, true},
	}
	for _, c := range cases {
		if got := editDistanceAtMost(c.a, c.b, c.limit); got != c.want {
			t.Errorf("editDistanceAtMost(%q,%q,%d) = %v", c.a, c.b, c.limit, got)
		}
	}
}

func TestCandidatePairs(t *testing.T) {
	terms := []string{"bruce willis", "b willis", "france", "frence", "xy"}
	pairs := candidatePairs(terms)
	has := func(a, b string) bool {
		if a > b {
			a, b = b, a
		}
		for _, p := range pairs {
			if p[0] == a && p[1] == b {
				return true
			}
		}
		return false
	}
	if !has("bruce willis", "b willis") {
		t.Error("token-sharing pair missing")
	}
	if !has("france", "frence") {
		t.Error("typo pair missing")
	}
	if has("xy", "france") {
		t.Error("unrelated short token paired")
	}
}
