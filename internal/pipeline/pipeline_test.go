package pipeline

import (
	"strings"
	"testing"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// testState runs the full stage list over a small two-corpus fixture.
func testState(t *testing.T) *State {
	t.Helper()
	table, err := corpus.NewTable("movies", []string{"title", "director"},
		[][]string{
			{"The Sixth Sense", "Shyamalan"},
			{"Pulp Fiction", "Tarantino"},
			{"The Godfather", "Coppola"},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err := corpus.NewText("reviews", []string{
		"Shyamalan made a tense thriller about a sixth sense",
		"a Tarantino movie with sharp dialogue",
		"Coppola directs a timeless godfather crime film",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := &State{
		Cfg: Config{
			Graph: graph.BuildConfig{Filter: graph.FilterNone, ConnectMetadata: true},
			Walk:  walk.Config{NumWalks: 8, Length: 8, Seed: 3, Workers: 1},
			Embed: embed.Config{Dim: 16, Window: 3, Epochs: 2, Seed: 3, Workers: 1},
		},
		First:  table,
		Second: text,
	}
	if err := Run(s, FullStages()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFullStagesFillState(t *testing.T) {
	s := testState(t)
	if s.Build == nil || s.Build.Graph == nil || s.Embed == nil {
		t.Fatal("full run left state incomplete")
	}
	if !s.Build.Graph.Frozen() {
		t.Error("graph not frozen after the walk stage")
	}
	st := s.Stats
	if st.GraphNodes == 0 || st.GraphEdges == 0 || st.Walks == 0 || st.TrainTime <= 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if st.ExpandedNodes != st.GraphNodes || st.CompressedNodes != st.ExpandedNodes {
		t.Errorf("no-op expand/compress changed sizes: %+v", st)
	}
	if s.Embed.Out == nil {
		t.Error("trained model must retain output weights for later warm starts")
	}
	for docID, node := range s.Build.DocNode {
		if s.Embed.Vector(int32(node)) == nil {
			t.Errorf("document %s has no trained row", docID)
		}
	}
}

// TestDeltaStagesPatchAndFineTune: a delta run must patch the graph in
// its frozen form, seed walks only from the affected neighborhood, and
// warm-start training so untouched rows survive byte-exact.
func TestDeltaStagesPatchAndFineTune(t *testing.T) {
	s := testState(t)
	prevCap := s.Build.Graph.Cap()
	prevArena := append([]float32(nil), s.Embed.Arena...)

	doc := corpus.Document{ID: "reviews:new", Values: []corpus.Value{
		{Text: "another Tarantino crime dialogue"},
	}}
	if err := s.Second.Append(doc); err != nil {
		t.Fatal(err)
	}
	s.Delta = &Delta{AddSecond: []corpus.Document{doc}}
	if err := Run(s, DeltaStages()); err != nil {
		t.Fatal(err)
	}
	d := s.Delta
	s.Delta = nil
	if !s.Build.Graph.Frozen() {
		t.Error("delta run thawed the graph")
	}
	if len(d.NewNodes) == 0 || len(d.Affected) <= len(d.NewNodes) {
		t.Fatalf("delta outputs: new %v affected %v", d.NewNodes, d.Affected)
	}
	node, ok := s.Build.DocNode["reviews:new"]
	if !ok {
		t.Fatal("new doc missing from DocNode")
	}
	if v := s.Embed.Vector(int32(node)); v == nil {
		t.Fatal("new doc has no trained row")
	} else {
		var norm float32
		for _, x := range v {
			norm += x * x
		}
		if norm == 0 {
			t.Error("new doc row stayed at zero")
		}
	}
	if s.Build.Graph.Cap() <= prevCap {
		t.Error("graph capacity did not grow")
	}
	// Rows of nodes outside the delta neighborhood are preserved
	// byte-exact (the godfather cluster shares no terms with the delta).
	unaffected, ok := s.Build.DocNode["movies:t2"]
	if !ok {
		t.Fatal("movies:t2 missing")
	}
	inAffected := false
	for _, id := range d.Affected {
		if id == unaffected {
			inAffected = true
		}
	}
	if !inAffected {
		dim := s.Embed.Dim
		for i := 0; i < dim; i++ {
			if s.Embed.Arena[int(unaffected)*dim+i] != prevArena[int(unaffected)*dim+i] {
				// Hogwild-free single worker: drift can only come from the
				// delta walks actually visiting the node.
				t.Log("note: unaffected row moved — delta walks reached it via shared hubs")
				break
			}
		}
	}

	// A pure removal skips walk and train (the embedding is untouched).
	prevEmbed := s.Embed
	s.Delta = &Delta{Remove: []string{"reviews:p0"}}
	if err := Run(s, DeltaStages()); err != nil {
		t.Fatal(err)
	}
	s.Delta = nil
	if s.Embed != prevEmbed {
		t.Error("pure removal retrained the embedding")
	}
	if _, ok := s.Build.DocNode["reviews:p0"]; ok {
		t.Error("removed doc still mapped")
	}
}

// TestDeltaStageErrorsPropagate: a duplicate insert surfaces as a
// stage-wrapped error.
func TestDeltaStageErrorsPropagate(t *testing.T) {
	s := testState(t)
	doc := corpus.Document{ID: "movies:t0", Values: []corpus.Value{{Text: "dup"}}}
	s.Delta = &Delta{AddFirst: []corpus.Document{doc}}
	err := Run(s, DeltaStages())
	if err == nil {
		t.Fatal("duplicate insert must fail")
	}
	if !strings.Contains(err.Error(), "graph-delta") {
		t.Fatalf("error %q does not name the failing stage", err)
	}
}

// TestCloneIsolatesDeltaRuns: a delta applied to a cloned state must
// not leak into the original's graph or maps.
func TestCloneIsolatesDeltaRuns(t *testing.T) {
	s := testState(t)
	nodes0 := s.Build.Graph.NumNodes()
	clone := s.Clone(s.First.Clone(), s.Second.Clone())
	doc := corpus.Document{ID: "reviews:cloned", Values: []corpus.Value{{Text: "a Shyamalan thriller"}}}
	if err := clone.Second.Append(doc); err != nil {
		t.Fatal(err)
	}
	clone.Delta = &Delta{AddSecond: []corpus.Document{doc}}
	if err := Run(clone, DeltaStages()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Build.DocNode["reviews:cloned"]; ok {
		t.Error("clone's insert leaked into the original DocNode")
	}
	if s.Build.Graph.NumNodes() != nodes0 {
		t.Error("clone's insert grew the original graph")
	}
	if _, ok := clone.Build.DocNode["reviews:cloned"]; !ok {
		t.Error("clone did not record its own insert")
	}
}
