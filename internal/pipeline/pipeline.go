// Package pipeline decomposes the paper's build pipeline — graph
// creation (§II), expansion (§III-A), compression (§III-B), random
// walks and embedding training (§IV-A) — into reusable stage
// components that operate on one explicit shared State. The same
// stages run in two regimes:
//
//   - FullStages rebuilds everything from the two corpora, the batch
//     path the paper describes.
//   - DeltaStages applies a Delta (documents added to or removed from a
//     built State): the graph is patched in place against its frozen
//     CSR, walks are seeded only from the delta's neighborhood, and the
//     embedder warm-starts from the existing arenas so new rows are
//     fine-tuned into the established embedding space instead of
//     retraining it.
//
// The public tdmatch.Build/Ingest/Remove calls are thin wrappers that
// translate the public Config, run a stage list, and gather the
// document vectors the serving indexes need.
package pipeline

import (
	"fmt"
	"time"

	"github.com/tdmatch/tdmatch/internal/compress"
	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/expand"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/kb"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// Config carries the per-stage parameters, already translated from the
// public configuration into the internal packages' terms.
type Config struct {
	// Graph parametrizes graph creation (§II).
	Graph graph.BuildConfig
	// Resource, when non-nil, enables expansion (§III-A).
	Resource kb.Resource
	// MaxRelationsPerNode caps relations fetched per node during
	// expansion (0 = all).
	MaxRelationsPerNode int
	// Compress enables MSP compression (§III-B) with ratio MSPRatio.
	Compress bool
	// MSPRatio is β of Algorithm 3.
	MSPRatio float64
	// Seed drives compression sampling.
	Seed int64
	// Walk parametrizes random-walk generation (§IV-A).
	Walk walk.Config
	// SecondOrder, when non-nil, switches to node2vec-style walks.
	SecondOrder *walk.SecondOrder
	// Embed parametrizes Word2Vec training (§IV-A).
	Embed embed.Config
}

// Stats aggregates what the stages did; the public Stats mirrors it.
type Stats struct {
	// GraphNodes / GraphEdges are the sizes after graph creation.
	GraphNodes, GraphEdges int
	// ExpandedNodes / ExpandedEdges are the sizes after expansion.
	ExpandedNodes, ExpandedEdges int
	// CompressedNodes / CompressedEdges are the sizes after compression.
	CompressedNodes, CompressedEdges int
	// FilteredTerms counts terms dropped by data-node filtering.
	FilteredTerms int
	// MergedTerms counts term→canonical mappings applied.
	MergedTerms int
	// Walks is the number of generated random walks.
	Walks int
	// TrainTime is the wall time of walk generation plus training.
	TrainTime time.Duration
}

// State is the explicit shared state the stages operate on. A full run
// fills it from the two corpora; the State is then retained by the
// trained model as the substrate every later delta run patches.
type State struct {
	// Cfg holds the stage parameters.
	Cfg Config
	// First and Second are the corpora (mutated by the caller before a
	// delta run: appended documents, removed documents).
	First, Second *corpus.Corpus
	// Build is the graph-construction result: the graph itself plus the
	// document/attribute node maps and the term canonicalizer the delta
	// path reuses.
	Build *graph.Result
	// Seqs is the packed walk corpus handed from the walk stage to the
	// train stage; callers may release it (assign the zero value) once
	// training is done.
	Seqs embed.Sequences
	// Embed is the trained embedding model over graph node IDs. Delta
	// runs replace it with a warm-started fine-tune.
	Embed *embed.Model
	// OwnsEmbed reports that this State holds the only reference to
	// Embed's arenas, so a delta run may fine-tune them in place
	// (O(delta) per ingest) instead of copying the full vocabulary.
	// Clone transfers ownership to the clone: the serving layer chains
	// ingests through successive clones, and nothing reads the trainer
	// arenas directly — document vectors are gathered as copies.
	OwnsEmbed bool
	// Delta is the pending delta of a DeltaStages run (nil otherwise).
	Delta *Delta
	// Stats aggregates stage statistics.
	Stats Stats
}

// Delta describes one incremental mutation: documents appended to
// either corpus and/or document IDs removed. The graph-delta stage
// fills the output fields consumed by the later stages.
type Delta struct {
	// AddFirst / AddSecond are documents already appended to the
	// respective corpus, to be inserted into the graph.
	AddFirst, AddSecond []corpus.Document
	// Remove lists document IDs to delete from the graph.
	Remove []string

	// NewNodes are the nodes the graph patch created (metadata plus
	// first-seen terms).
	NewNodes []graph.NodeID
	// Affected is the walk seed set: the new nodes plus the existing
	// nodes they connect to.
	Affected []graph.NodeID
}

// Stage is one named pipeline step over the shared State.
type Stage struct {
	// Name identifies the stage in errors and logs.
	Name string
	// Run executes the stage.
	Run func(*State) error
}

// Run executes the stages in order, stopping at the first error.
func Run(s *State, stages []Stage) error {
	for _, st := range stages {
		if err := st.Run(s); err != nil {
			return fmt.Errorf("pipeline: stage %s: %w", st.Name, err)
		}
	}
	return nil
}

// FullStages returns the batch pipeline: graph creation, expansion,
// compression, walk generation and embedding training over the whole
// corpora.
func FullStages() []Stage {
	return []Stage{
		{Name: "graph", Run: runGraph},
		{Name: "expand", Run: runExpand},
		{Name: "compress", Run: runCompress},
		{Name: "walks", Run: runWalks},
		{Name: "train", Run: runTrain},
	}
}

// DeltaStages returns the incremental pipeline over State.Delta: patch
// the graph (frozen-CSR insert/remove), seed walks from the affected
// neighborhood only, and warm-start training from the existing arenas.
// Pure removals skip the walk and train stages entirely.
func DeltaStages() []Stage {
	return []Stage{
		{Name: "graph-delta", Run: runGraphDelta},
		{Name: "walks-delta", Run: runWalksDelta},
		{Name: "train-delta", Run: runTrainDelta},
	}
}

// runGraph is the §II stage: build the joint graph over both corpora.
func runGraph(s *State) error {
	res, err := graph.Build(s.First, s.Second, s.Cfg.Graph)
	if err != nil {
		return err
	}
	s.Build = res
	s.Stats.GraphNodes = res.Graph.NumNodes()
	s.Stats.GraphEdges = res.Graph.NumEdges()
	s.Stats.FilteredTerms = res.FilteredTerms
	s.Stats.MergedTerms = res.Canon.Mappings()
	return nil
}

// runExpand is the §III-A stage: add external-resource relations; a
// no-op recording unchanged sizes when no resource is configured.
func runExpand(s *State) error {
	if s.Cfg.Resource != nil {
		expand.Expand(s.Build.Graph, s.Cfg.Resource, expand.Options{
			MaxRelationsPerNode: s.Cfg.MaxRelationsPerNode,
		})
	}
	s.Stats.ExpandedNodes = s.Build.Graph.NumNodes()
	s.Stats.ExpandedEdges = s.Build.Graph.NumEdges()
	return nil
}

// runCompress is the §III-B stage: MSP compression when configured,
// with the document and attribute node maps rebuilt over the surviving
// nodes (compression renumbers the graph).
func runCompress(s *State) error {
	if s.Cfg.Compress {
		g := compress.MSP(s.Build.Graph, compress.Options{Ratio: s.Cfg.MSPRatio, Seed: s.Cfg.Seed})
		s.Build.Graph = g
		rebuiltDocs := make(map[string]graph.NodeID, len(s.Build.DocNode))
		for docID := range s.Build.DocNode {
			if id, ok := g.MetaNode(docID); ok {
				rebuiltDocs[docID] = id
			}
		}
		s.Build.DocNode = rebuiltDocs
		rebuiltAttrs := make(map[string]graph.NodeID, len(s.Build.AttrNode))
		for key := range s.Build.AttrNode {
			if id, ok := g.MetaNode(key); ok {
				rebuiltAttrs[key] = id
			}
		}
		s.Build.AttrNode = rebuiltAttrs
	}
	s.Stats.CompressedNodes = s.Build.Graph.NumNodes()
	s.Stats.CompressedEdges = s.Build.Graph.NumEdges()
	return nil
}

// runWalks is the first half of the §IV-A stage: freeze the
// structurally-final graph into its CSR layout and generate the packed
// walk corpus over every live node.
func runWalks(s *State) error {
	start := time.Now()
	g := s.Build.Graph
	g.Freeze()
	if so := s.Cfg.SecondOrder; so != nil {
		walks := walk.GenerateSecondOrder(g, s.Cfg.Walk, *so)
		s.Seqs = walk.PackWalks(walks)
	} else {
		s.Seqs = walk.GeneratePacked(g, s.Cfg.Walk)
	}
	s.Stats.Walks = s.Seqs.Len()
	s.Stats.TrainTime += time.Since(start)
	return nil
}

// runTrain is the second half of the §IV-A stage: Word2Vec over the
// packed walk corpus, one row per graph node ID.
func runTrain(s *State) error {
	start := time.Now()
	em, err := embed.TrainPacked(s.Seqs, s.Build.Graph.Cap(), s.Cfg.Embed)
	if err != nil {
		return err
	}
	s.Embed = em
	s.OwnsEmbed = true
	s.Stats.TrainTime += time.Since(start)
	return nil
}

// Clone returns a State over the given (already cloned) corpora that
// shares every immutable artefact with the original and deep-copies
// everything a delta run mutates: the graph, the node maps and the
// canonicalizer. The embedding model is shared, and ownership of its
// arenas transfers to the clone (the original loses in-place fine-tune
// rights and would fall back to the copying warm start) — the serving
// layer's clone-mutate-swap chain always trains on the newest clone,
// so in steady state every ingest fine-tunes in place. This keeps
// cloning a served model cheap enough to run per ingest request.
func (s *State) Clone(first, second *corpus.Corpus) *State {
	ns := &State{
		Cfg:       s.Cfg,
		First:     first,
		Second:    second,
		Embed:     s.Embed,
		OwnsEmbed: s.OwnsEmbed,
		Stats:     s.Stats,
	}
	s.OwnsEmbed = false
	if s.Build != nil {
		docNode := make(map[string]graph.NodeID, len(s.Build.DocNode))
		for k, v := range s.Build.DocNode {
			docNode[k] = v
		}
		attrNode := make(map[string]graph.NodeID, len(s.Build.AttrNode))
		for k, v := range s.Build.AttrNode {
			attrNode[k] = v
		}
		ns.Build = &graph.Result{
			Graph:         s.Build.Graph.Clone(),
			DocNode:       docNode,
			AttrNode:      attrNode,
			Canon:         s.Build.Canon.Clone(),
			Mergers:       s.Build.Mergers,
			Pre:           s.Build.Pre,
			PrimaryFirst:  s.Build.PrimaryFirst,
			ConnectMeta:   s.Build.ConnectMeta,
			FilteredTerms: s.Build.FilteredTerms,
			TFIDFTopK:     s.Build.TFIDFTopK,
			DFDocs:        s.Build.DFDocs,
		}
		for side, df := range s.Build.DF {
			if df == nil {
				continue
			}
			cp := make(map[string]int, len(df))
			for k, v := range df {
				cp[k] = v
			}
			ns.Build.DF[side] = cp
		}
	}
	return ns
}
