package pipeline

import (
	"time"

	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/expand"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// runGraphDelta patches the built graph with the pending Delta:
// removals first (frozen-CSR compaction, term nodes kept), then
// insertions, which reuse the build's tokenization, canonicalizer (new
// terms are learned through the retained merger chain) and filtering
// policy (only the vocabulary-defining side creates data nodes under
// intersect filtering). The per-document TF-IDF token filter
// (FilterTFIDF) applies to delta documents too, scored against the
// build's retained document-frequency statistics, and when an external
// resource is configured the nodes created by the delta are expanded
// with its relations — so the only drift against a from-scratch
// rebuild is the DF statistics themselves lagging behind removals.
func runGraphDelta(s *State) error {
	d := s.Delta
	s.Build.RemoveDocs(d.Remove)

	intersect := s.Cfg.Graph.Filter == graph.FilterIntersect
	if len(d.AddFirst) > 0 {
		createTerms := s.Build.PrimaryFirst || !intersect
		gd, err := s.Build.InsertDocs(s.First, d.AddFirst, graph.First, createTerms)
		if err != nil {
			return err
		}
		d.NewNodes = append(d.NewNodes, gd.NewNodes...)
		d.Affected = append(d.Affected, gd.Affected...)
		s.Stats.FilteredTerms += gd.FilteredTerms
	}
	if len(d.AddSecond) > 0 {
		createTerms := !s.Build.PrimaryFirst || !intersect
		gd, err := s.Build.InsertDocs(s.Second, d.AddSecond, graph.Second, createTerms)
		if err != nil {
			return err
		}
		d.NewNodes = append(d.NewNodes, gd.NewNodes...)
		d.Affected = append(d.Affected, gd.Affected...)
		s.Stats.FilteredTerms += gd.FilteredTerms
	}
	expanded := false
	if s.Cfg.Resource != nil && len(d.NewNodes) > 0 {
		added, touched, _ := expand.ExpandNodes(s.Build.Graph, s.Cfg.Resource, d.NewNodes, expand.Options{
			MaxRelationsPerNode: s.Cfg.MaxRelationsPerNode,
		})
		d.NewNodes = append(d.NewNodes, added...)
		d.Affected = append(d.Affected, added...)
		d.Affected = append(d.Affected, touched...)
		expanded = len(added)+len(touched) > 0
	}
	// A term touched by documents of both sides appears in both insert
	// results — and an expansion object may coincide with a term a
	// document touched; dedup so the walk stage seeds each node once.
	if expanded || (len(d.AddFirst) > 0 && len(d.AddSecond) > 0) {
		seen := make(map[graph.NodeID]struct{}, len(d.Affected))
		uniq := d.Affected[:0]
		for _, id := range d.Affected {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				uniq = append(uniq, id)
			}
		}
		d.Affected = uniq
	}
	s.Stats.MergedTerms = s.Build.Canon.Mappings()
	return nil
}

// runWalksDelta generates the fine-tuning walk corpus: walks seeded
// only from the delta's affected set (new nodes plus their existing
// neighbors). Pure removals leave no seeds and produce no corpus.
// Second-order (node2vec) configurations fine-tune with first-order
// walks — the delta corpus is a local perturbation, not a full
// retraining.
func runWalksDelta(s *State) error {
	d := s.Delta
	if len(d.Affected) == 0 {
		s.Seqs = embed.Sequences{Offsets: []int32{0}}
		return nil
	}
	start := time.Now()
	s.Seqs = walk.GeneratePackedFrom(s.Build.Graph, d.Affected, s.Cfg.Walk)
	s.Stats.Walks += s.Seqs.Len()
	s.Stats.TrainTime += time.Since(start)
	return nil
}

// runTrainDelta warm-starts training from the existing arenas: rows of
// pre-existing nodes are preserved (and only nudged where the delta
// walks visit them), appended vocabulary rows are initialized fresh and
// fine-tuned into the existing space. Pure removals skip training — the
// embedding space is untouched.
func runTrainDelta(s *State) error {
	d := s.Delta
	if len(d.Affected) == 0 && len(d.NewNodes) == 0 {
		return nil
	}
	start := time.Now()
	cfg := s.Cfg.Embed
	cfg.Initial = s.Embed
	// A State that exclusively owns its arenas fine-tunes them in place —
	// O(delta) instead of the O(vocabulary) copying warm start, with
	// bit-identical output. Either way this State owns the result.
	cfg.InPlace = s.OwnsEmbed
	// No frequent-token subsampling on fine-tunes. Subsampling keys on
	// relative token frequency, and in a walk corpus every node's
	// relative frequency shrinks as the graph grows — so the survivor
	// count (and with it the fine-tune cost) would creep up with corpus
	// size. A few thousand locally-seeded walk tokens carry no meaningful
	// frequency signal to subsample on; training on all of them keeps the
	// per-document ingest cost a pure function of the delta.
	cfg.Subsample = 0
	em, err := embed.TrainPacked(s.Seqs, s.Build.Graph.Cap(), cfg)
	if err != nil {
		return err
	}
	s.Embed = em
	s.OwnsEmbed = true
	s.Stats.TrainTime += time.Since(start)
	return nil
}
