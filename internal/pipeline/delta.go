package pipeline

import (
	"time"

	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// runGraphDelta patches the built graph with the pending Delta:
// removals first (frozen-CSR compaction, term nodes kept), then
// insertions, which reuse the build's tokenization, canonicalizer (new
// terms are learned through the retained merger chain) and filtering
// policy (only the vocabulary-defining side creates data nodes under
// intersect filtering). Two known approximations, both repaired by a
// Compact rebuild: expansion relations are not fetched for delta
// documents, and the per-document TF-IDF token filter (FilterTFIDF) is
// not applied to them — its document-frequency statistics belong to
// the batch build — so delta documents connect to all their terms.
func runGraphDelta(s *State) error {
	d := s.Delta
	s.Build.RemoveDocs(d.Remove)

	intersect := s.Cfg.Graph.Filter == graph.FilterIntersect
	if len(d.AddFirst) > 0 {
		createTerms := s.Build.PrimaryFirst || !intersect
		gd, err := s.Build.InsertDocs(s.First, d.AddFirst, graph.First, createTerms)
		if err != nil {
			return err
		}
		d.NewNodes = append(d.NewNodes, gd.NewNodes...)
		d.Affected = append(d.Affected, gd.Affected...)
		s.Stats.FilteredTerms += gd.FilteredTerms
	}
	if len(d.AddSecond) > 0 {
		createTerms := !s.Build.PrimaryFirst || !intersect
		gd, err := s.Build.InsertDocs(s.Second, d.AddSecond, graph.Second, createTerms)
		if err != nil {
			return err
		}
		d.NewNodes = append(d.NewNodes, gd.NewNodes...)
		d.Affected = append(d.Affected, gd.Affected...)
		s.Stats.FilteredTerms += gd.FilteredTerms
	}
	// A term touched by documents of both sides appears in both insert
	// results; dedup so the walk stage seeds each node once.
	if len(d.AddFirst) > 0 && len(d.AddSecond) > 0 {
		seen := make(map[graph.NodeID]struct{}, len(d.Affected))
		uniq := d.Affected[:0]
		for _, id := range d.Affected {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				uniq = append(uniq, id)
			}
		}
		d.Affected = uniq
	}
	s.Stats.MergedTerms = s.Build.Canon.Mappings()
	return nil
}

// runWalksDelta generates the fine-tuning walk corpus: walks seeded
// only from the delta's affected set (new nodes plus their existing
// neighbors). Pure removals leave no seeds and produce no corpus.
// Second-order (node2vec) configurations fine-tune with first-order
// walks — the delta corpus is a local perturbation, not a full
// retraining.
func runWalksDelta(s *State) error {
	d := s.Delta
	if len(d.Affected) == 0 {
		s.Seqs = embed.Sequences{Offsets: []int32{0}}
		return nil
	}
	start := time.Now()
	s.Seqs = walk.GeneratePackedFrom(s.Build.Graph, d.Affected, s.Cfg.Walk)
	s.Stats.Walks += s.Seqs.Len()
	s.Stats.TrainTime += time.Since(start)
	return nil
}

// runTrainDelta warm-starts training from the existing arenas: rows of
// pre-existing nodes are preserved (and only nudged where the delta
// walks visit them), appended vocabulary rows are initialized fresh and
// fine-tuned into the existing space. Pure removals skip training — the
// embedding space is untouched.
func runTrainDelta(s *State) error {
	d := s.Delta
	if len(d.Affected) == 0 && len(d.NewNodes) == 0 {
		return nil
	}
	start := time.Now()
	cfg := s.Cfg.Embed
	cfg.Initial = s.Embed
	em, err := embed.TrainPacked(s.Seqs, s.Build.Graph.Cap(), cfg)
	if err != nil {
		return err
	}
	s.Embed = em
	s.Stats.TrainTime += time.Since(start)
	return nil
}
