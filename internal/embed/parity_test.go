package embed

// Training-parity harness for the arena-backed memory-layout refactor:
// referenceTrain below is a structural copy of the pre-refactor trainer —
// per-token [][]float32 weight rows, the unfused two-loop trainPair, a
// fresh subsample slice per sequence and the per-worker learning-rate
// estimate — sharing this package's numeric helpers (Dot, Add,
// sigmoidFast, unigramTable, xorshift). At Workers: 1 the refactored
// TrainPacked must reproduce its output bit for bit: the layout change
// moves memory around without touching a single arithmetic result.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/graph"
)

// referenceTrain is the pre-refactor Train: pointer-per-row weights,
// allocation per subsampled sequence, separate gradient-accumulate and
// output-update loops.
func referenceTrain(seqs [][]int32, vocabSize int, cfg Config) (*Model, error) {
	if vocabSize <= 0 {
		return nil, fmt.Errorf("embed: vocabSize must be positive, got %d", vocabSize)
	}
	cfg = cfg.withDefaults()

	counts := make([]int64, vocabSize)
	var totalTokens int64
	for si, s := range seqs {
		for _, t := range s {
			if t < 0 || int(t) >= vocabSize {
				return nil, fmt.Errorf("embed: token %d out of range in sequence %d", t, si)
			}
			counts[t]++
			totalTokens++
		}
	}
	if totalTokens == 0 {
		return &Model{Dim: cfg.Dim, Vecs: make([][]float32, vocabSize)}, nil
	}

	syn0 := make([][]float32, vocabSize)
	syn1 := make([][]float32, vocabSize)
	initRng := newXorshift(uint64(cfg.Seed) ^ 0xabcdef)
	for i := range syn0 {
		v0 := make([]float32, cfg.Dim)
		for d := range v0 {
			v0[d] = (initRng.float() - 0.5) / float32(cfg.Dim)
		}
		syn0[i] = v0
		syn1[i] = make([]float32, cfg.Dim)
	}

	table := unigramTable(counts)
	trainedTarget := float64(totalTokens) * float64(cfg.Epochs)

	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > len(seqs) && len(seqs) > 0 {
		workers = len(seqs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := newXorshift(uint64(cfg.Seed)*0x9e37 + uint64(worker)*7919 + 1)
			neu := make([]float32, cfg.Dim)
			grad := make([]float32, cfg.Dim)
			var processed int64
			lr := float32(cfg.LR)
			minLR := float32(cfg.LR / 10000)
			updateLR := func() {
				frac := float32(float64(processed*int64(workers)) / trainedTarget)
				if frac > 1 {
					frac = 1
				}
				lr = float32(cfg.LR) * (1 - frac)
				if lr < minLR {
					lr = minLR
				}
			}
			for ep := 0; ep < cfg.Epochs; ep++ {
				for si := worker; si < len(seqs); si += workers {
					seq := seqs[si]
					if cfg.Subsample > 0 {
						seq = referenceSubsample(seq, counts, totalTokens, cfg.Subsample, &rng)
					}
					for pos, center := range seq {
						if processed%10000 == 0 {
							updateLR()
						}
						processed++
						win := 1 + rng.intn(cfg.Window)
						lo, hi := pos-win, pos+win
						if lo < 0 {
							lo = 0
						}
						if hi >= len(seq) {
							hi = len(seq) - 1
						}
						if cfg.Mode == SkipGram {
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								referenceTrainPair(syn0[seq[c]], syn1, center, table, cfg.Negative, lr, grad, &rng)
							}
						} else {
							for d := range neu {
								neu[d] = 0
							}
							n := 0
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								Add(neu, syn0[seq[c]])
								n++
							}
							if n == 0 {
								continue
							}
							inv := 1 / float32(n)
							for d := range neu {
								neu[d] *= inv
							}
							referenceTrainPair(neu, syn1, center, table, cfg.Negative, lr, grad, &rng)
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								Add(syn0[seq[c]], grad)
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return &Model{Dim: cfg.Dim, Vecs: syn0}, nil
}

// referenceTrainPair is the unfused pre-refactor update: one loop
// accumulates the input-side gradient, a second loop updates the output
// row.
func referenceTrainPair(in []float32, syn1 [][]float32, target int32, table []int32, negative int, lr float32, grad []float32, rng *xorshift) {
	for d := range grad {
		grad[d] = 0
	}
	for k := 0; k <= negative; k++ {
		var tok int32
		var label float32
		if k == 0 {
			tok, label = target, 1
		} else {
			tok = table[rng.intn(len(table))]
			if tok == target {
				continue
			}
			label = 0
		}
		out := syn1[tok]
		f := Dot(in, out)
		g := (label - sigmoidFast(f)) * lr
		for d := range grad {
			grad[d] += g * out[d]
		}
		for d := range out {
			out[d] += g * in[d]
		}
	}
	Add(in, grad)
}

// referenceSubsample is the allocating pre-refactor subsampler.
func referenceSubsample(seq []int32, counts []int64, total int64, t float64, rng *xorshift) []int32 {
	out := make([]int32, 0, len(seq))
	for _, tok := range seq {
		freq := float64(counts[tok]) / float64(total)
		if freq > t {
			keep := float32(math.Sqrt(t / freq))
			if rng.float() > keep {
				continue
			}
		}
		out = append(out, tok)
	}
	return out
}

// parityCorpus builds a deterministic synthetic corpus with a skewed
// token distribution and uneven sequence lengths (the shapes that would
// expose ordering or buffer-reuse bugs).
func parityCorpus(vocab, nSeqs int, seed uint64) [][]int32 {
	rng := newXorshift(seed)
	seqs := make([][]int32, nSeqs)
	for i := range seqs {
		n := 3 + rng.intn(40)
		s := make([]int32, n)
		for j := range s {
			// Square the draw to skew frequencies toward low IDs.
			a := rng.intn(vocab)
			b := rng.intn(vocab)
			if b < a {
				a = b
			}
			s[j] = int32(a)
		}
		seqs[i] = s
	}
	return seqs
}

func assertModelsEqual(t *testing.T, want, got *Model) {
	t.Helper()
	if len(want.Vecs) != len(got.Vecs) {
		t.Fatalf("vocab size differs: %d vs %d", len(want.Vecs), len(got.Vecs))
	}
	for i := range want.Vecs {
		for d := range want.Vecs[i] {
			if want.Vecs[i][d] != got.Vecs[i][d] {
				t.Fatalf("token %d dim %d: reference %v, arena %v", i, d, want.Vecs[i][d], got.Vecs[i][d])
			}
		}
	}
}

// TestTrainMatchesReferenceLayout proves the memory-layout refactor is
// arithmetically inert: for every objective, with and without
// subsampling, single-worker arena training is bit-identical to the
// pointer-per-row reference.
func TestTrainMatchesReferenceLayout(t *testing.T) {
	seqs := parityCorpus(120, 60, 99)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"skipgram", Config{Dim: 24, Window: 4, Negative: 5, Epochs: 2, Seed: 7, Workers: 1, Mode: SkipGram}},
		{"cbow", Config{Dim: 24, Window: 6, Negative: 4, Epochs: 2, Seed: 8, Workers: 1, Mode: CBOW}},
		{"skipgram-subsample", Config{Dim: 16, Window: 3, Negative: 3, Epochs: 3, Seed: 9, Workers: 1, Mode: SkipGram, Subsample: 1e-2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := referenceTrain(seqs, 120, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Train(seqs, 120, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertModelsEqual(t, want, got)
			if got.Arena == nil {
				t.Fatal("trained model has no arena")
			}
			if &got.Arena[0] != &got.Vecs[0][0] {
				t.Error("Vecs[0] is not a view into the arena")
			}
		})
	}
}

// imdbWalkSequences derives training sequences from the seed IMDb graph
// with a self-contained deterministic walker (the walk package cannot be
// imported from embed's internal tests).
func imdbWalkSequences(t *testing.T) ([][]int32, *graph.Graph) {
	t.Helper()
	s, err := datasets.IMDb(datasets.IMDbConfig{Seed: 3, Movies: 30, WithTitle: true, GeneralSentences: 60})
	if err != nil {
		t.Fatal(err)
	}
	res, err := graph.Build(s.First, s.Second, graph.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	var seqs [][]int32
	g.Nodes(func(id graph.NodeID) {
		for k := 0; k < 3; k++ {
			rng := newXorshift(uint64(id)*1315423911 + uint64(k) + 17)
			walk := make([]int32, 0, 12)
			walk = append(walk, int32(id))
			cur := id
			for len(walk) < 12 {
				nbs := g.Neighbors(cur)
				if len(nbs) == 0 {
					break
				}
				cur = nbs[rng.intn(len(nbs))]
				walk = append(walk, int32(cur))
			}
			seqs = append(seqs, walk)
		}
	})
	return seqs, g
}

// rankAll orders the other-side metadata nodes by cosine similarity to
// the query node, ties broken by node ID — the §IV-B ranking the serving
// indexes reproduce.
func rankAll(m *Model, query graph.NodeID, targets []graph.NodeID) []graph.NodeID {
	type scored struct {
		id  graph.NodeID
		sim float64
	}
	list := make([]scored, 0, len(targets))
	for _, tgt := range targets {
		list = append(list, scored{tgt, m.Similarity(int32(query), int32(tgt))})
	}
	for i := 1; i < len(list); i++ {
		for j := i; j > 0; j-- {
			a, b := list[j-1], list[j]
			if b.sim > a.sim || (b.sim == a.sim && b.id < a.id) {
				list[j-1], list[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]graph.NodeID, len(list))
	for i, s := range list {
		out[i] = s.id
	}
	return out
}

// TestTrainParityIMDbRankings is the seed-IMDb acceptance check: arena
// training at Workers: 1 yields embeddings bit-identical to the
// pre-refactor reference, and therefore identical TopK rankings for
// every second-corpus metadata node against the first corpus.
func TestTrainParityIMDbRankings(t *testing.T) {
	seqs, g := imdbWalkSequences(t)
	cfg := Config{Dim: 32, Window: 3, Negative: 5, Epochs: 2, Seed: 11, Workers: 1, Mode: SkipGram, Subsample: 1e-2}
	want, err := referenceTrain(seqs, g.Cap(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrainPacked(PackSequences(seqs), g.Cap(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsEqual(t, want, got)

	targets := g.MetadataNodes(graph.First)
	queries := g.MetadataNodes(graph.Second)
	if len(targets) == 0 || len(queries) == 0 {
		t.Fatal("IMDb scenario produced no metadata nodes")
	}
	k := 10
	if k > len(targets) {
		k = len(targets)
	}
	for _, q := range queries {
		wantRank := rankAll(want, q, targets)[:k]
		gotRank := rankAll(got, q, targets)[:k]
		for i := range wantRank {
			if wantRank[i] != gotRank[i] {
				t.Fatalf("query %d: rank %d differs (reference %d, arena %d)", q, i, wantRank[i], gotRank[i])
			}
		}
	}
}
