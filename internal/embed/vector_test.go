package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDotNormCosine(t *testing.T) {
	a := []float32{1, 0, 0}
	b := []float32{0, 1, 0}
	c := []float32{2, 0, 0}
	if Dot(a, b) != 0 {
		t.Errorf("Dot orthogonal = %f", Dot(a, b))
	}
	if Norm(c) != 2 {
		t.Errorf("Norm = %f", Norm(c))
	}
	if !almostEq(Cosine(a, c), 1, 1e-6) {
		t.Errorf("Cosine parallel = %f", Cosine(a, c))
	}
	if !almostEq(Cosine(a, b), 0, 1e-6) {
		t.Errorf("Cosine orthogonal = %f", Cosine(a, b))
	}
	neg := []float32{-1, 0, 0}
	if !almostEq(Cosine(a, neg), -1, 1e-6) {
		t.Errorf("Cosine antiparallel = %f", Cosine(a, neg))
	}
}

func TestCosineZeroVector(t *testing.T) {
	if Cosine([]float32{0, 0}, []float32{1, 1}) != 0 {
		t.Error("zero vector cosine must be 0")
	}
}

func TestNormalize(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if !almostEq(float64(Norm(v)), 1, 1e-6) {
		t.Errorf("normalized norm = %f", Norm(v))
	}
	z := []float32{0, 0}
	Normalize(z) // must not panic or produce NaN
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero vector changed by Normalize")
	}
}

func TestMean(t *testing.T) {
	m := Mean([][]float32{{1, 2}, {3, 4}}, 2)
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v", m)
	}
	empty := Mean(nil, 3)
	if len(empty) != 3 || empty[0] != 0 {
		t.Errorf("empty Mean = %v", empty)
	}
}

func TestAdd(t *testing.T) {
	dst := []float32{1, 1}
	Add(dst, []float32{2, 3})
	if dst[0] != 3 || dst[1] != 4 {
		t.Errorf("Add = %v", dst)
	}
}

func TestSigmoidFast(t *testing.T) {
	if s := sigmoidFast(0); !almostEq(float64(s), 0.5, 0.01) {
		t.Errorf("sigmoid(0) = %f", s)
	}
	if sigmoidFast(10) != 1 {
		t.Error("sigmoid saturates high")
	}
	if sigmoidFast(-10) != 0 {
		t.Error("sigmoid saturates low")
	}
	// Monotone over the table range.
	prev := float32(-1)
	for x := float32(-5.9); x < 5.9; x += 0.1 {
		s := sigmoidFast(x)
		if s < prev {
			t.Fatalf("sigmoid not monotone at %f", x)
		}
		prev = s
	}
}

func TestCosineSymmetryProperty(t *testing.T) {
	f := func(a, b [4]int8) bool {
		va := make([]float32, 4)
		vb := make([]float32, 4)
		for i := 0; i < 4; i++ {
			va[i] = float32(a[i])
			vb[i] = float32(b[i])
		}
		c1, c2 := Cosine(va, vb), Cosine(vb, va)
		return almostEq(c1, c2, 1e-9) && c1 >= -1.0001 && c1 <= 1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorshiftRange(t *testing.T) {
	rng := newXorshift(42)
	for i := 0; i < 1000; i++ {
		if v := rng.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %d", v)
		}
		if f := rng.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %f", f)
		}
	}
}

func TestXorshiftDeterminism(t *testing.T) {
	a, b := newXorshift(7), newXorshift(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed diverged")
		}
	}
	c := newXorshift(8)
	same := true
	a2 := newXorshift(7)
	for i := 0; i < 10; i++ {
		if a2.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}
