package embed

import "fmt"

// TrainDBOW learns document vectors with the PV-DBOW objective (the
// Doc2Vec variant the paper's D2VEC baseline uses, §V): each document has
// one learned vector that is trained to predict the tokens it contains via
// negative sampling, ignoring word order.
//
// docs[i] is the token-ID sequence of document i; the returned matrix has
// one row per document.
func TrainDBOW(docs [][]int32, vocabSize int, cfg Config) ([][]float32, error) {
	if vocabSize <= 0 {
		return nil, fmt.Errorf("embed: vocabSize must be positive, got %d", vocabSize)
	}
	cfg = cfg.withDefaults()

	counts := make([]int64, vocabSize)
	var total int64
	for di, d := range docs {
		for _, t := range d {
			if t < 0 || int(t) >= vocabSize {
				return nil, fmt.Errorf("embed: token %d out of range in document %d", t, di)
			}
			counts[t]++
			total++
		}
	}
	// Document vectors live in one flat arena, like Train's syn0.
	dim := cfg.Dim
	docArena := make([]float32, len(docs)*dim)
	rng := newXorshift(uint64(cfg.Seed) ^ 0xd0c2)
	for i := range docArena {
		docArena[i] = (rng.float() - 0.5) / float32(dim)
	}
	docVecs := make([][]float32, len(docs))
	for i := range docVecs {
		docVecs[i] = docArena[i*dim : (i+1)*dim : (i+1)*dim]
	}
	if total == 0 {
		return docVecs, nil
	}
	syn1 := make([]float32, vocabSize*dim)
	table := unigramTable(counts)
	grad := make([]float32, dim)

	lr := float32(cfg.LR)
	minLR := float32(cfg.LR / 10000)
	var processed, target int64
	target = total * int64(cfg.Epochs)
	for ep := 0; ep < cfg.Epochs; ep++ {
		for di, d := range docs {
			dv := docVecs[di]
			for _, tok := range d {
				if processed%10000 == 0 {
					frac := float32(float64(processed) / float64(target))
					lr = float32(cfg.LR) * (1 - frac)
					if lr < minLR {
						lr = minLR
					}
				}
				processed++
				trainPair(dv, syn1, dim, tok, table, cfg.Negative, lr, grad, &rng)
			}
		}
	}
	return docVecs, nil
}
