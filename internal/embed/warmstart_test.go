package embed

import (
	"testing"
)

// TestWarmStartPreservesUntouchedRows: rows of the initial model whose
// tokens never appear in the fine-tune sequences (neither as centers,
// contexts, nor sampled negatives — guaranteed here by restricting the
// vocabulary of the delta sequences) must survive byte-exact, and the
// appended vocabulary rows must become non-zero trained vectors.
func TestWarmStartPreservesUntouchedRows(t *testing.T) {
	base := PackSequences([][]int32{
		{0, 1, 2, 0, 1, 2, 0, 1, 2},
		{3, 4, 5, 3, 4, 5, 3, 4, 5},
	})
	cfg := Config{Dim: 16, Window: 2, Negative: 2, Epochs: 3, Seed: 7, Workers: 1}
	warm, err := TrainPacked(base, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Out == nil {
		t.Fatal("trained model must retain output weights for warm starts")
	}
	frozen := append([]float32(nil), warm.Arena...)

	// Fine-tune over a delta that mentions tokens 6 and 7 (new) plus 0
	// and 1 (old). Tokens 3-5 appear nowhere in the delta.
	delta := PackSequences([][]int32{
		{6, 0, 1, 6, 0, 1, 6},
		{7, 0, 6, 7, 0, 6, 7},
	})
	cfg.Initial = warm
	tuned, err := TrainPacked(delta, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuned.Vecs) != 8 {
		t.Fatalf("vocab = %d, want 8", len(tuned.Vecs))
	}
	// Negative sampling draws only tokens present in the delta counts
	// (counts for 3-5 are zero), so rows 3-5 must be untouched.
	for tok := 3; tok <= 5; tok++ {
		row := tuned.Vecs[tok]
		for d := range row {
			if row[d] != frozen[tok*16+d] {
				t.Fatalf("untouched row %d changed at dim %d", tok, d)
			}
		}
	}
	// Rows mentioned in the delta must have moved; new rows must exist.
	moved := false
	for d, v := range tuned.Vecs[0] {
		if v != frozen[d] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("row 0 appears frozen although it trained in the delta")
	}
	var norm float32
	for _, v := range tuned.Vecs[6] {
		norm += v * v
	}
	if norm == 0 {
		t.Error("new row 6 stayed zero after fine-tuning")
	}
	// The new tokens co-occur with token 0, so their vectors should be
	// closer to token 0's than to an unrelated frozen one.
	if Cosine(tuned.Vecs[6], tuned.Vecs[0]) <= Cosine(tuned.Vecs[6], tuned.Vecs[4]) {
		t.Error("fine-tuned new row not closer to its co-occurring token than to an unrelated one")
	}

	// Dim mismatch is rejected.
	bad := cfg
	bad.Dim = 8
	if _, err := TrainPacked(delta, 8, bad); err == nil {
		t.Error("warm start with mismatched dim must fail")
	}
}

// TestInPlaceWarmStartBitIdentical: fine-tuning with InPlace must
// produce exactly the vectors the copying warm start produces (single
// worker for determinism), return the initial model itself, and keep
// existing arena views valid when the arena does not move.
func TestInPlaceWarmStartBitIdentical(t *testing.T) {
	base := PackSequences([][]int32{
		{0, 1, 2, 3, 0, 1, 2, 3},
		{4, 5, 0, 4, 5, 0, 4, 5},
	})
	cfg := Config{Dim: 12, Window: 2, Negative: 3, Epochs: 2, Seed: 11, Workers: 1}
	warmA, err := TrainPacked(base, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmB, err := TrainPacked(base, 6, cfg)
	if err != nil {
		t.Fatal(err)
	}

	delta := PackSequences([][]int32{
		{6, 0, 7, 6, 0, 7, 6},
		{7, 1, 6, 7, 1, 6},
	})
	copyCfg := cfg
	copyCfg.Initial = warmA
	copied, err := TrainPacked(delta, 8, copyCfg)
	if err != nil {
		t.Fatal(err)
	}
	ipCfg := cfg
	ipCfg.Initial = warmB
	ipCfg.InPlace = true
	tuned, err := TrainPacked(delta, 8, ipCfg)
	if err != nil {
		t.Fatal(err)
	}
	if tuned != warmB {
		t.Fatal("InPlace fine-tune must return the initial model itself")
	}
	if len(tuned.Vecs) != len(copied.Vecs) {
		t.Fatalf("vocab = %d, want %d", len(tuned.Vecs), len(copied.Vecs))
	}
	for tok := range copied.Vecs {
		for d := range copied.Vecs[tok] {
			if tuned.Vecs[tok][d] != copied.Vecs[tok][d] {
				t.Fatalf("row %d dim %d: in-place %v != copied %v", tok, d, tuned.Vecs[tok][d], copied.Vecs[tok][d])
			}
		}
	}
	for i := 0; i < len(copied.Out); i++ {
		if tuned.Out[i] != copied.Out[i] {
			t.Fatalf("output weights diverge at %d", i)
		}
	}
	// Chained fine-tune: the second in-place call grows within headroom
	// and must still match the copying path.
	delta2 := PackSequences([][]int32{{8, 6, 0, 8, 6}})
	copyCfg.Initial = copied
	copied2, err := TrainPacked(delta2, 9, copyCfg)
	if err != nil {
		t.Fatal(err)
	}
	ipCfg.Initial = tuned
	tuned2, err := TrainPacked(delta2, 9, ipCfg)
	if err != nil {
		t.Fatal(err)
	}
	for tok := range copied2.Vecs {
		for d := range copied2.Vecs[tok] {
			if tuned2.Vecs[tok][d] != copied2.Vecs[tok][d] {
				t.Fatalf("chained row %d dim %d diverges", tok, d)
			}
		}
	}
	// A shrinking vocabulary cannot be fine-tuned in place.
	bad := ipCfg
	bad.Initial = tuned2
	if _, err := TrainPacked(delta, 4, bad); err == nil {
		t.Error("in-place warm start with shrunken vocabulary must fail")
	}
}
