package embed

import "fmt"

// Sequences is the packed training-corpus format of the §IV-A hot path:
// every token sequence concatenated into one contiguous Tokens slice,
// delimited by Offsets (sequence i is Tokens[Offsets[i]:Offsets[i+1]],
// so len(Offsets) == number of sequences + 1). Training iterates packed
// sequences as one sequential sweep over memory, with no per-sentence
// slice headers to chase; walk generation produces this format directly
// (walk.GeneratePacked) and TrainPacked consumes it natively. The zero
// value is an empty corpus.
type Sequences struct {
	Tokens  []int32
	Offsets []int32
}

// PackSequences converts slice-of-slice token sequences into the packed
// format — the adapter for callers that still materialize [][]int32
// (baselines, tests, second-order walks).
func PackSequences(seqs [][]int32) Sequences {
	total := 0
	for _, s := range seqs {
		total += len(s)
	}
	if int64(total) > int64(1)<<31-1 {
		// Offsets are int32; fail loudly instead of silently wrapping.
		panic(fmt.Sprintf("embed: %d tokens overflow the packed int32 offset index", total))
	}
	p := Sequences{
		Tokens:  make([]int32, 0, total),
		Offsets: make([]int32, 1, len(seqs)+1),
	}
	for _, s := range seqs {
		p.Tokens = append(p.Tokens, s...)
		p.Offsets = append(p.Offsets, int32(len(p.Tokens)))
	}
	return p
}

// Len returns the number of sequences.
func (s Sequences) Len() int {
	if len(s.Offsets) == 0 {
		return 0
	}
	return len(s.Offsets) - 1
}

// Seq returns sequence i as a view into the packed token stream. Callers
// must not mutate it.
func (s Sequences) Seq(i int) []int32 {
	return s.Tokens[s.Offsets[i]:s.Offsets[i+1]]
}

// NumTokens returns the total token count across all sequences.
func (s Sequences) NumTokens() int { return len(s.Tokens) }

// Unpack materializes the packed corpus as [][]int32 views into the token
// stream (no token copying) — the inverse adapter of PackSequences.
func (s Sequences) Unpack() [][]int32 {
	out := make([][]int32, s.Len())
	for i := range out {
		out[i] = s.Seq(i)
	}
	return out
}
