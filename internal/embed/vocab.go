package embed

// Vocab maps string tokens to dense int32 IDs for training text corpora
// (baselines train directly on document tokens rather than graph nodes).
type Vocab struct {
	byTok  map[string]int32
	tokens []string
	counts []int64
}

// BuildVocab scans sentences and assigns IDs to tokens occurring at least
// minCount times (minCount <= 1 keeps everything), in first-seen order.
func BuildVocab(sents [][]string, minCount int) *Vocab {
	freq := make(map[string]int64)
	order := make([]string, 0, 256)
	for _, s := range sents {
		for _, t := range s {
			if freq[t] == 0 {
				order = append(order, t)
			}
			freq[t]++
		}
	}
	v := &Vocab{byTok: make(map[string]int32)}
	for _, t := range order {
		if int(freq[t]) < minCount {
			continue
		}
		v.byTok[t] = int32(len(v.tokens))
		v.tokens = append(v.tokens, t)
		v.counts = append(v.counts, freq[t])
	}
	return v
}

// Size returns the number of vocabulary entries.
func (v *Vocab) Size() int { return len(v.tokens) }

// ID returns the token's ID, or -1 when out of vocabulary.
func (v *Vocab) ID(tok string) int32 {
	if id, ok := v.byTok[tok]; ok {
		return id
	}
	return -1
}

// Token returns the string for an ID.
func (v *Vocab) Token(id int32) string {
	if id < 0 || int(id) >= len(v.tokens) {
		return ""
	}
	return v.tokens[id]
}

// Encode converts sentences to ID sequences, dropping OOV tokens.
func (v *Vocab) Encode(sents [][]string) [][]int32 {
	out := make([][]int32, len(sents))
	for i, s := range sents {
		seq := make([]int32, 0, len(s))
		for _, t := range s {
			if id, ok := v.byTok[t]; ok {
				seq = append(seq, id)
			}
		}
		out[i] = seq
	}
	return out
}

// TextModel pairs a trained Model with its Vocab for string lookups.
type TextModel struct {
	Model *Model
	Vocab *Vocab
}

// TrainText builds a vocabulary over the sentences and trains embeddings.
func TrainText(sents [][]string, minCount int, cfg Config) (*TextModel, error) {
	v := BuildVocab(sents, minCount)
	if v.Size() == 0 {
		return &TextModel{Model: &Model{Dim: cfg.withDefaults().Dim}, Vocab: v}, nil
	}
	m, err := Train(v.Encode(sents), v.Size(), cfg)
	if err != nil {
		return nil, err
	}
	return &TextModel{Model: m, Vocab: v}, nil
}

// Vector returns the embedding of a token, or nil when unknown.
func (tm *TextModel) Vector(tok string) []float32 {
	id := tm.Vocab.ID(tok)
	if id < 0 {
		return nil
	}
	return tm.Model.Vector(id)
}

// SentenceVector embeds a token sequence as the mean of its known token
// vectors — the aggregation the paper uses for longer texts (§V,
// "we generate embeddings for longer texts with the mean of the vectors of
// their tokens").
func (tm *TextModel) SentenceVector(tokens []string) []float32 {
	var vecs [][]float32
	for _, t := range tokens {
		if v := tm.Vector(t); v != nil {
			vecs = append(vecs, v)
		}
	}
	return Mean(vecs, tm.Model.Dim)
}

// Similarity returns the cosine similarity between two tokens, 0 when
// either is unknown.
func (tm *TextModel) Similarity(a, b string) float64 {
	va, vb := tm.Vector(a), tm.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	return Cosine(va, vb)
}
