// Package embed implements the embedding generation of the paper's §IV-A:
// a from-scratch Word2Vec (Skip-gram and CBOW with negative sampling)
// trained on random-walk sentences, plus the PV-DBOW document-embedding
// variant used by the D2VEC baseline. Vectors are float32 throughout.
package embed

import "math"

// Dot returns the inner product of two equal-length vectors. The loop is
// unrolled over four independent accumulators so the float32 additions
// pipeline instead of serializing on one dependency chain — this function
// dominates both training (trainPair) and serving (flat index scans).
func Dot(a, b []float32) float32 {
	if len(a) == 0 {
		return 0
	}
	_ = b[len(a)-1] // bounds hint: keeps the panic on a short b, drops per-element checks
	var s0, s1, s2, s3 float32
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s2) + (s1 + s3)
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Cosine returns the cosine similarity in [-1, 1]; zero vectors yield 0.
func Cosine(a, b []float32) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return float64(Dot(a, b)) / (float64(na) * float64(nb))
}

// Normalize scales a to unit norm in place (no-op for zero vectors) and
// returns it.
func Normalize(a []float32) []float32 {
	n := Norm(a)
	if n == 0 {
		return a
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return a
}

// Mean returns the element-wise mean of the given vectors, all of length
// dim. Nil or empty input yields a zero vector.
func Mean(vecs [][]float32, dim int) []float32 {
	out := make([]float32, dim)
	if len(vecs) == 0 {
		return out
	}
	for _, v := range vecs {
		for i := range out {
			out[i] += v[i]
		}
	}
	inv := 1 / float32(len(vecs))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Add accumulates src into dst, unrolled four-wide so the independent
// element updates pipeline (each element is touched exactly once, so the
// result is identical to the scalar loop).
func Add(dst, src []float32) {
	if len(dst) == 0 {
		return
	}
	_ = src[len(dst)-1] // bounds hint: keeps the panic on a short src
	n := len(dst) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

// sigmoid lookup table, the classic word2vec speed trick: precomputed
// values of 1/(1+e^-x) over [-maxExp, maxExp].
const (
	expTableSize = 1000
	maxExp       = 6.0
)

var expTable = func() [expTableSize]float32 {
	var t [expTableSize]float32
	for i := range t {
		x := (float64(i)/expTableSize*2 - 1) * maxExp
		e := math.Exp(x)
		t[i] = float32(e / (e + 1))
	}
	return t
}()

// sigmoidScale maps a logit in [-maxExp, maxExp] to a table index with a
// single multiply (float division is not strength-reduced by the
// compiler and showed up in training profiles).
const sigmoidScale = expTableSize / (2 * maxExp)

// sigmoidFast approximates the logistic function; inputs outside
// [-maxExp, maxExp] saturate to 0 or 1 exactly as in the reference
// word2vec implementation (those pairs are skipped by callers).
func sigmoidFast(x float32) float32 {
	if x >= maxExp {
		return 1
	}
	if x <= -maxExp {
		return 0
	}
	idx := int((x + maxExp) * sigmoidScale)
	if idx >= expTableSize {
		idx = expTableSize - 1
	}
	if idx < 0 {
		idx = 0
	}
	return expTable[idx]
}

// splitmix64 is the seed-spreading hash used to derive independent RNG
// streams per worker / per node so that parallel runs stay reproducible.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// xorshift is a tiny fast RNG for the training hot loop.
type xorshift uint64

func newXorshift(seed uint64) xorshift {
	s := splitmix64(seed)
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	return xorshift(s)
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// intn returns a uniform value in [0, n).
func (x *xorshift) intn(n int) int {
	return int(x.next() % uint64(n))
}

// float returns a uniform value in [0, 1).
func (x *xorshift) float() float32 {
	return float32(x.next()>>40) / float32(1<<24)
}
