package embed

import (
	"testing"
)

// clusterCorpus builds sentences from two disjoint token clusters:
// tokens 0-4 co-occur, tokens 5-9 co-occur, never across.
func clusterCorpus(repeats int) [][]int32 {
	var seqs [][]int32
	for r := 0; r < repeats; r++ {
		seqs = append(seqs,
			[]int32{0, 1, 2, 3, 4, 0, 2, 4, 1, 3},
			[]int32{5, 6, 7, 8, 9, 5, 7, 9, 6, 8},
		)
	}
	return seqs
}

func trainCluster(t *testing.T, mode Mode) *Model {
	t.Helper()
	m, err := Train(clusterCorpus(200), 10, Config{
		Dim: 16, Window: 3, Negative: 5, Epochs: 3, Seed: 1, Workers: 1, Mode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainSkipGramSeparatesClusters(t *testing.T) {
	m := trainCluster(t, SkipGram)
	within := m.Similarity(0, 2)
	across := m.Similarity(0, 7)
	if within <= across {
		t.Errorf("within-cluster sim %.3f <= across %.3f", within, across)
	}
}

func TestTrainCBOWSeparatesClusters(t *testing.T) {
	m := trainCluster(t, CBOW)
	within := m.Similarity(1, 3)
	across := m.Similarity(1, 8)
	if within <= across {
		t.Errorf("within-cluster sim %.3f <= across %.3f", within, across)
	}
}

func TestTrainDeterministicSingleWorker(t *testing.T) {
	cfg := Config{Dim: 8, Window: 2, Negative: 3, Epochs: 2, Seed: 5, Workers: 1}
	m1, err := Train(clusterCorpus(20), 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(clusterCorpus(20), 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Vecs {
		for d := range m1.Vecs[i] {
			if m1.Vecs[i][d] != m2.Vecs[i][d] {
				t.Fatalf("nondeterministic training at token %d dim %d", i, d)
			}
		}
	}
}

func TestTrainParallelStillLearns(t *testing.T) {
	m, err := Train(clusterCorpus(200), 10, Config{
		Dim: 16, Window: 3, Negative: 5, Epochs: 3, Seed: 2, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Similarity(0, 3) <= m.Similarity(0, 8) {
		t.Error("parallel training failed to separate clusters")
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, 0, Config{}); err == nil {
		t.Error("want error for vocabSize 0")
	}
	if _, err := Train([][]int32{{5}}, 3, Config{}); err == nil {
		t.Error("want error for out-of-range token")
	}
	if _, err := Train([][]int32{{-1}}, 3, Config{}); err == nil {
		t.Error("want error for negative token")
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	m, err := Train(nil, 5, Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vecs) != 5 {
		t.Errorf("Vecs = %d, want 5 nil slots", len(m.Vecs))
	}
	if m.Vector(0) != nil {
		t.Error("untrained vector must be nil")
	}
}

func TestModelVectorBounds(t *testing.T) {
	m := &Model{Dim: 2, Vecs: [][]float32{{1, 2}}}
	if m.Vector(-1) != nil || m.Vector(1) != nil {
		t.Error("out-of-range Vector must be nil")
	}
	if m.Vector(0) == nil {
		t.Error("valid Vector returned nil")
	}
	var nilM *Model
	if nilM.Vector(0) != nil {
		t.Error("nil model Vector must be nil")
	}
	if m.Similarity(0, 5) != 0 {
		t.Error("similarity with missing vector must be 0")
	}
}

func TestTrainSubsample(t *testing.T) {
	// With aggressive subsampling the ultra-frequent token 0 is mostly
	// dropped, but training still runs and other tokens get vectors.
	seqs := make([][]int32, 50)
	for i := range seqs {
		seqs[i] = []int32{0, 1, 0, 2, 0, 3, 0, 1, 0, 2}
	}
	m, err := Train(seqs, 4, Config{Dim: 8, Epochs: 2, Seed: 3, Workers: 1, Subsample: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Vector(1) == nil || m.Vector(3) == nil {
		t.Error("subsampled training lost vectors")
	}
}

func TestUnigramTableProportions(t *testing.T) {
	counts := []int64{1000, 10, 0, 10}
	table := unigramTable(counts)
	freq := make([]int, 4)
	for _, tok := range table {
		freq[tok]++
	}
	if freq[2] != 0 {
		t.Errorf("zero-count token sampled %d times", freq[2])
	}
	if freq[0] <= freq[1] {
		t.Errorf("frequent token underrepresented: %d vs %d", freq[0], freq[1])
	}
	// The 3/4 power flattens: token 0 has 100x the count of token 1 but
	// must have far less than 100x the table share.
	if freq[0] > freq[1]*60 {
		t.Errorf("power smoothing missing: %d vs %d", freq[0], freq[1])
	}
}

func TestUnigramTableAllZero(t *testing.T) {
	table := unigramTable([]int64{0, 0, 0})
	for _, tok := range table {
		if tok < 0 || tok > 2 {
			t.Fatalf("token out of range: %d", tok)
		}
	}
}

func TestModeString(t *testing.T) {
	if SkipGram.String() != "skipgram" || CBOW.String() != "cbow" {
		t.Error("mode names wrong")
	}
}

func TestTrainDBOWDocSimilarity(t *testing.T) {
	// Documents 0 and 1 share vocabulary; 2 is disjoint. Long documents
	// give each doc vector enough updates to move away from random init.
	mk := func(tokens []int32, reps int) []int32 {
		out := make([]int32, 0, len(tokens)*reps)
		for i := 0; i < reps; i++ {
			out = append(out, tokens...)
		}
		return out
	}
	docs := [][]int32{
		mk([]int32{0, 1, 2, 3}, 60),
		mk([]int32{3, 2, 1, 0}, 60),
		mk([]int32{4, 5, 6, 7}, 60),
	}
	vecs, err := TrainDBOW(docs, 8, Config{Dim: 16, Negative: 8, Epochs: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim01 := Cosine(vecs[0], vecs[1])
	sim02 := Cosine(vecs[0], vecs[2])
	if sim01 <= sim02 {
		t.Errorf("DBOW: related docs %.3f <= unrelated %.3f", sim01, sim02)
	}
}

func TestTrainDBOWValidation(t *testing.T) {
	if _, err := TrainDBOW(nil, 0, Config{}); err == nil {
		t.Error("want error for vocabSize 0")
	}
	if _, err := TrainDBOW([][]int32{{9}}, 3, Config{}); err == nil {
		t.Error("want error for out-of-range token")
	}
	vecs, err := TrainDBOW([][]int32{{}, {}}, 3, Config{Dim: 4})
	if err != nil || len(vecs) != 2 {
		t.Errorf("empty docs: vecs=%d err=%v", len(vecs), err)
	}
}

func TestBuildVocab(t *testing.T) {
	sents := [][]string{{"a", "b", "a"}, {"b", "c"}}
	v := BuildVocab(sents, 1)
	if v.Size() != 3 {
		t.Fatalf("Size = %d, want 3", v.Size())
	}
	if v.ID("a") != 0 || v.ID("b") != 1 || v.ID("c") != 2 {
		t.Errorf("IDs not in first-seen order: a=%d b=%d c=%d", v.ID("a"), v.ID("b"), v.ID("c"))
	}
	if v.ID("zzz") != -1 {
		t.Error("OOV must be -1")
	}
	if v.Token(1) != "b" || v.Token(99) != "" {
		t.Error("Token lookup wrong")
	}
}

func TestBuildVocabMinCount(t *testing.T) {
	sents := [][]string{{"rare", "common", "common"}}
	v := BuildVocab(sents, 2)
	if v.Size() != 1 || v.ID("common") != 0 {
		t.Errorf("minCount filter failed: size=%d", v.Size())
	}
	enc := v.Encode(sents)
	if len(enc[0]) != 2 {
		t.Errorf("Encode kept OOV: %v", enc[0])
	}
}

func TestTrainTextSentenceVector(t *testing.T) {
	sents := [][]string{}
	for i := 0; i < 100; i++ {
		sents = append(sents,
			[]string{"movie", "director", "actor", "film"},
			[]string{"virus", "cases", "deaths", "country"},
		)
	}
	tm, err := TrainText(sents, 1, Config{Dim: 16, Window: 3, Epochs: 3, Seed: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Similarity("movie", "actor") <= tm.Similarity("movie", "virus") {
		t.Error("text model failed to cluster co-occurring words")
	}
	sv := tm.SentenceVector([]string{"movie", "director", "unknowntoken"})
	if len(sv) != 16 {
		t.Errorf("SentenceVector dim = %d", len(sv))
	}
	if tm.Vector("unknowntoken") != nil {
		t.Error("unknown token must have nil vector")
	}
	if tm.Similarity("movie", "unknowntoken") != 0 {
		t.Error("similarity with OOV must be 0")
	}
}

func TestTrainTextEmpty(t *testing.T) {
	tm, err := TrainText(nil, 1, Config{Dim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Vocab.Size() != 0 {
		t.Error("empty corpus must give empty vocab")
	}
	sv := tm.SentenceVector([]string{"x"})
	if len(sv) != 8 {
		t.Errorf("SentenceVector on empty model: %v", sv)
	}
}
