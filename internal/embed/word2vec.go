package embed

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Mode selects the Word2Vec training objective.
type Mode uint8

const (
	// SkipGram predicts context tokens from the center token. The paper
	// uses Skip-gram with window 3 for text-to-data matching (§V).
	SkipGram Mode = iota
	// CBOW predicts the center token from the averaged context. The paper
	// uses CBOW with window 15 for text-oriented tasks (§V).
	CBOW
)

// String names the mode.
func (m Mode) String() string {
	if m == CBOW {
		return "cbow"
	}
	return "skipgram"
}

// Config parametrizes training. Zero fields fall back to defaults
// (Dim 100, Window 5, Negative 5, Epochs 5, LR 0.025).
type Config struct {
	Dim      int
	Window   int
	Negative int
	Epochs   int
	// LR is the starting learning rate, decayed linearly to LR/10k over
	// the token stream as in the reference implementation.
	LR      float64
	Mode    Mode
	Seed    int64
	Workers int
	// Subsample, when > 0, is the threshold t of the frequent-token
	// down-sampling probability 1 - sqrt(t/freq).
	Subsample float64
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 100
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.LR <= 0 {
		c.LR = 0.025
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Model holds trained embeddings indexed by token ID.
type Model struct {
	Dim  int
	Vecs [][]float32
}

// Vector returns the embedding of token id (nil when out of range).
func (m *Model) Vector(id int32) []float32 {
	if m == nil || id < 0 || int(id) >= len(m.Vecs) {
		return nil
	}
	return m.Vecs[id]
}

// Similarity returns the cosine similarity of two token embeddings.
func (m *Model) Similarity(a, b int32) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	return Cosine(va, vb)
}

const unigramTableSize = 1 << 20

// unigramTable is the negative-sampling distribution: token frequency
// raised to the 3/4 power, as in Mikolov et al.
func unigramTable(counts []int64) []int32 {
	table := make([]int32, unigramTableSize)
	var total float64
	pow := func(c int64) float64 {
		return math.Pow(float64(c), 0.75)
	}
	for _, c := range counts {
		if c > 0 {
			total += pow(c)
		}
	}
	if total == 0 {
		for i := range table {
			table[i] = int32(i % len(counts))
		}
		return table
	}
	i := 0
	var cum float64
	for tok, c := range counts {
		if c <= 0 {
			continue
		}
		cum += pow(c) / total
		limit := int(cum * unigramTableSize)
		for ; i < limit && i < unigramTableSize; i++ {
			table[i] = int32(tok)
		}
	}
	for ; i < unigramTableSize; i++ {
		table[i] = table[i-1]
	}
	return table
}

// Train learns token embeddings from sequences of token IDs in
// [0, vocabSize). It returns an error for invalid input. Training is
// hogwild-parallel across Workers goroutines (set Workers to 1 for fully
// deterministic output).
func Train(seqs [][]int32, vocabSize int, cfg Config) (*Model, error) {
	if vocabSize <= 0 {
		return nil, fmt.Errorf("embed: vocabSize must be positive, got %d", vocabSize)
	}
	cfg = cfg.withDefaults()

	counts := make([]int64, vocabSize)
	var totalTokens int64
	for si, s := range seqs {
		for _, t := range s {
			if t < 0 || int(t) >= vocabSize {
				return nil, fmt.Errorf("embed: token %d out of range in sequence %d", t, si)
			}
			counts[t]++
			totalTokens++
		}
	}
	if totalTokens == 0 {
		return &Model{Dim: cfg.Dim, Vecs: make([][]float32, vocabSize)}, nil
	}

	// syn0: input vectors (the embeddings); syn1: output weights.
	syn0 := make([][]float32, vocabSize)
	syn1 := make([][]float32, vocabSize)
	initRng := newXorshift(uint64(cfg.Seed) ^ 0xabcdef)
	for i := range syn0 {
		v0 := make([]float32, cfg.Dim)
		for d := range v0 {
			v0[d] = (initRng.float() - 0.5) / float32(cfg.Dim)
		}
		syn0[i] = v0
		syn1[i] = make([]float32, cfg.Dim)
	}

	table := unigramTable(counts)
	trainedTarget := float64(totalTokens) * float64(cfg.Epochs)

	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > len(seqs) && len(seqs) > 0 {
		workers = len(seqs)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := newXorshift(uint64(cfg.Seed)*0x9e37 + uint64(worker)*7919 + 1)
			neu := make([]float32, cfg.Dim)
			grad := make([]float32, cfg.Dim)
			var processed int64
			lr := float32(cfg.LR)
			minLR := float32(cfg.LR / 10000)
			updateLR := func() {
				frac := float32(float64(processed*int64(workers)) / trainedTarget)
				if frac > 1 {
					frac = 1
				}
				lr = float32(cfg.LR) * (1 - frac)
				if lr < minLR {
					lr = minLR
				}
			}
			for ep := 0; ep < cfg.Epochs; ep++ {
				for si := worker; si < len(seqs); si += workers {
					seq := seqs[si]
					if cfg.Subsample > 0 {
						seq = subsample(seq, counts, totalTokens, cfg.Subsample, &rng)
					}
					for pos, center := range seq {
						if processed%10000 == 0 {
							updateLR()
						}
						processed++
						// Randomized effective window, as in word2vec.
						win := 1 + rng.intn(cfg.Window)
						lo, hi := pos-win, pos+win
						if lo < 0 {
							lo = 0
						}
						if hi >= len(seq) {
							hi = len(seq) - 1
						}
						if cfg.Mode == SkipGram {
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								trainPair(syn0[seq[c]], syn1, center, table, cfg.Negative, lr, grad, &rng)
							}
						} else {
							// CBOW: average context into neu.
							for d := range neu {
								neu[d] = 0
							}
							n := 0
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								Add(neu, syn0[seq[c]])
								n++
							}
							if n == 0 {
								continue
							}
							inv := 1 / float32(n)
							for d := range neu {
								neu[d] *= inv
							}
							trainPair(neu, syn1, center, table, cfg.Negative, lr, grad, &rng)
							// grad now holds the input-side gradient;
							// distribute to every context vector.
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								Add(syn0[seq[c]], grad)
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return &Model{Dim: cfg.Dim, Vecs: syn0}, nil
}

// trainPair performs one positive + k negative updates for input vector in
// against target token (and sampled negatives) through syn1. On return,
// grad holds the accumulated input-side gradient; for Skip-gram it is
// applied to in directly, for CBOW the caller distributes it.
func trainPair(in []float32, syn1 [][]float32, target int32, table []int32, negative int, lr float32, grad []float32, rng *xorshift) {
	for d := range grad {
		grad[d] = 0
	}
	for k := 0; k <= negative; k++ {
		var tok int32
		var label float32
		if k == 0 {
			tok, label = target, 1
		} else {
			tok = table[rng.intn(len(table))]
			if tok == target {
				continue
			}
			label = 0
		}
		out := syn1[tok]
		f := Dot(in, out)
		g := (label - sigmoidFast(f)) * lr
		for d := range grad {
			grad[d] += g * out[d]
		}
		for d := range out {
			out[d] += g * in[d]
		}
	}
	Add(in, grad)
}

// subsample drops frequent tokens with probability 1 - sqrt(t/f(w)),
// writing survivors into a fresh slice.
func subsample(seq []int32, counts []int64, total int64, t float64, rng *xorshift) []int32 {
	out := make([]int32, 0, len(seq))
	for _, tok := range seq {
		freq := float64(counts[tok]) / float64(total)
		if freq > t {
			keep := float32(math.Sqrt(t / freq))
			if rng.float() > keep {
				continue
			}
		}
		out = append(out, tok)
	}
	return out
}
