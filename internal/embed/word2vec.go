package embed

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Mode selects the Word2Vec training objective.
type Mode uint8

const (
	// SkipGram predicts context tokens from the center token. The paper
	// uses Skip-gram with window 3 for text-to-data matching (§V).
	SkipGram Mode = iota
	// CBOW predicts the center token from the averaged context. The paper
	// uses CBOW with window 15 for text-oriented tasks (§V).
	CBOW
)

// String names the mode.
func (m Mode) String() string {
	if m == CBOW {
		return "cbow"
	}
	return "skipgram"
}

// Config parametrizes training. Zero fields fall back to defaults
// (Dim 100, Window 5, Negative 5, Epochs 5, LR 0.025).
type Config struct {
	Dim      int
	Window   int
	Negative int
	Epochs   int
	// LR is the starting learning rate, decayed linearly to LR/10k over
	// the token stream as in the reference implementation.
	LR      float64
	Mode    Mode
	Seed    int64
	Workers int
	// Subsample, when > 0, is the threshold t of the frequent-token
	// down-sampling probability 1 - sqrt(t/freq).
	Subsample float64
	// Initial, when non-nil, warm-starts training from a previously
	// trained model: its rows (both the embedding arena and the output
	// weights) seed the first len(Initial.Vecs) vocabulary rows, rows
	// beyond them are freshly initialized, and training fine-tunes the
	// combined arena over the given sequences. This is the incremental
	// ingest path: sequences seeded from a delta's neighborhood adjust
	// new rows into the existing embedding space without retraining it.
	Initial *Model
	// InPlace, with Initial set, fine-tunes Initial's own arenas instead
	// of copying them: the arena is grown (with amortizing headroom) to
	// the new vocabulary size and TrainPacked returns Initial itself.
	// Output is bit-identical to the copying warm start, but the
	// per-call cost is O(delta + new rows) instead of O(vocabulary) — the
	// segmented-ingest hot path. The caller must own Initial exclusively:
	// nothing may read its arenas while training runs, and the returned
	// model aliases them. Ignored when Initial is nil.
	InPlace bool
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 100
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.LR <= 0 {
		c.LR = 0.025
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Model holds trained embeddings indexed by token ID. After training,
// Arena is the flat row-major storage (token i's vector occupies
// Arena[i*Dim : (i+1)*Dim]) and every Vecs entry is a view into it, so
// downstream consumers (the serving indexes, persistence) can alias one
// contiguous block instead of chasing per-token allocations. Models
// assembled by hand (tests) may leave Arena nil and fill Vecs directly.
//
// Out retains the output-side weight matrix (syn1) in the same layout.
// It is dead weight for serving, but it is what makes warm-start
// fine-tuning (Config.Initial) meaningful: the trained output rows are
// the anchors new vocabulary rows train against. Callers that will
// never fine-tune can drop it (Model.DropOut).
type Model struct {
	Dim   int
	Arena []float32
	Vecs  [][]float32
	Out   []float32
}

// DropOut releases the output-side weights for models that will never
// warm-start further training.
func (m *Model) DropOut() { m.Out = nil }

// Vector returns the embedding of token id (nil when out of range).
func (m *Model) Vector(id int32) []float32 {
	if m == nil || id < 0 || int(id) >= len(m.Vecs) {
		return nil
	}
	return m.Vecs[id]
}

// Similarity returns the cosine similarity of two token embeddings.
func (m *Model) Similarity(a, b int32) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	return Cosine(va, vb)
}

// maxUnigramTableSize caps the negative-sampling table; tableSizeFor
// shrinks it for small vocabularies so the randomly-probed table stays
// cache-resident in the training hot loop.
const maxUnigramTableSize = 1 << 20

// tableSizeFor returns the negative-sampling table size for a vocabulary:
// a power of two (so each draw is a mask, not a modulo) granting at least
// 32 slots per token on average, clamped to [1<<16, 1<<20]. The 3/4-power
// smoothing flattens the frequency distribution enough that 32 slots per
// token preserves sampling fidelity, while a small vocabulary gets a
// table that stays cache-resident instead of thrashing L2 with the full
// 4 MB worst case.
func tableSizeFor(vocab int) int {
	size := 1 << 16
	for size < vocab*32 && size < maxUnigramTableSize {
		size <<= 1
	}
	return size
}

// unigramTable is the negative-sampling distribution: token frequency
// raised to the 3/4 power, as in Mikolov et al.
func unigramTable(counts []int64) []int32 {
	unigramTableSize := tableSizeFor(len(counts))
	table := make([]int32, unigramTableSize)
	var total float64
	pow := func(c int64) float64 {
		return math.Pow(float64(c), 0.75)
	}
	for _, c := range counts {
		if c > 0 {
			total += pow(c)
		}
	}
	if total == 0 {
		for i := range table {
			table[i] = int32(i % len(counts))
		}
		return table
	}
	i := 0
	var cum float64
	for tok, c := range counts {
		if c <= 0 {
			continue
		}
		cum += pow(c) / total
		limit := int(cum * float64(unigramTableSize))
		for ; i < limit && i < unigramTableSize; i++ {
			table[i] = int32(tok)
		}
	}
	for ; i < unigramTableSize; i++ {
		table[i] = table[i-1]
	}
	return table
}

// unigramTableSparse builds the negative-sampling table from a sparse
// token tally — the fine-tune path, where the distinct tokens of a
// delta corpus are a sliver of the vocabulary. The table is sized by
// the distinct-token count (typically the 1<<16 floor, cache-resident)
// and holds the same 3/4-power distribution over the same tokens the
// dense build would produce for that corpus.
func unigramTableSparse(sparse map[int32]int64) []int32 {
	unigramTableSize := tableSizeFor(len(sparse))
	table := make([]int32, unigramTableSize)
	if len(sparse) == 0 {
		return table
	}
	toks := make([]int32, 0, len(sparse))
	for tok := range sparse {
		toks = append(toks, tok)
	}
	// Map iteration order is random; the cumulative fill below must walk
	// tokens in ascending order, like the dense table, for determinism.
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	var total float64
	for _, tok := range toks {
		total += math.Pow(float64(sparse[tok]), 0.75)
	}
	i := 0
	var cum float64
	for _, tok := range toks {
		cum += math.Pow(float64(sparse[tok]), 0.75) / total
		limit := int(cum * float64(unigramTableSize))
		for ; i < limit && i < unigramTableSize; i++ {
			table[i] = tok
		}
	}
	for ; i < unigramTableSize; i++ {
		table[i] = table[i-1]
	}
	return table
}

// Train learns token embeddings from sequences of token IDs in
// [0, vocabSize) — the [][]int32 adapter over TrainPacked for callers
// that materialize their corpus as slice-of-slices.
func Train(seqs [][]int32, vocabSize int, cfg Config) (*Model, error) {
	return TrainPacked(PackSequences(seqs), vocabSize, cfg)
}

// TrainPacked learns token embeddings from a packed token-sequence corpus
// with IDs in [0, vocabSize). It returns an error for invalid input.
// Training is hogwild-parallel across Workers goroutines (set Workers to
// 1 for fully deterministic output). The hot path is allocation-free:
// both weight matrices live in flat stride-addressed arenas, the
// gradient-accumulate and output-update loops are fused into one pass,
// and per-worker scratch buffers (CBOW accumulator, gradient, subsample
// survivors) are reused across sequences and epochs.
func TrainPacked(seqs Sequences, vocabSize int, cfg Config) (*Model, error) {
	if vocabSize <= 0 {
		return nil, fmt.Errorf("embed: vocabSize must be positive, got %d", vocabSize)
	}
	cfg = cfg.withDefaults()

	// A full build tallies token counts into a dense vocabulary-sized
	// array. A warm-start fine-tune trains on a delta corpus whose
	// distinct tokens are a sliver of the vocabulary, so it tallies
	// sparsely — the whole setup stays O(delta tokens) per call instead
	// of O(vocabulary), which is what keeps per-document ingest cost
	// independent of how large the graph has grown.
	fineTune := cfg.Initial != nil
	var counts []int64
	var sparseCounts map[int32]int64
	if fineTune {
		sparseCounts = make(map[int32]int64)
	} else {
		counts = make([]int64, vocabSize)
	}
	nSeqs := seqs.Len()
	for si := 0; si < nSeqs; si++ {
		for _, t := range seqs.Seq(si) {
			if t < 0 || int(t) >= vocabSize {
				return nil, fmt.Errorf("embed: token %d out of range in sequence %d", t, si)
			}
			if fineTune {
				sparseCounts[t]++
			} else {
				counts[t]++
			}
		}
	}
	totalTokens := int64(seqs.NumTokens())
	if totalTokens == 0 && cfg.Initial == nil {
		return &Model{Dim: cfg.Dim, Vecs: make([][]float32, vocabSize)}, nil
	}

	// syn0: input vectors (the embeddings); syn1: output weights. Both are
	// flat row-major arenas — row i at [i*dim : (i+1)*dim]. Under a warm
	// start the leading rows are copied from the initial model (syn1
	// defaults to zero where the initial model did not retain it) and only
	// the appended vocabulary rows get a fresh random initialization.
	dim := cfg.Dim
	var syn0, syn1 []float32
	var inPlace *Model
	syn0Moved := false
	warmFloats := 0
	if cfg.Initial != nil && cfg.Initial.Dim != dim {
		return nil, fmt.Errorf("embed: warm start dim %d != configured dim %d", cfg.Initial.Dim, dim)
	}
	switch {
	case cfg.Initial != nil && cfg.InPlace:
		inPlace = cfg.Initial
		warmFloats = len(inPlace.Arena)
		if warmFloats > vocabSize*dim {
			return nil, fmt.Errorf("embed: warm start holds %d rows but vocabulary shrank to %d", warmFloats/dim, vocabSize)
		}
		// Grow the initial model's own arenas: the warm region is already
		// in place and the extension is zeroed, exactly the state the
		// copying path reaches — so the two paths stay bit-identical.
		syn0, syn0Moved = growFloats(inPlace.Arena, vocabSize*dim)
		syn1, _ = growFloats(inPlace.Out, vocabSize*dim)
	case cfg.Initial != nil:
		syn0 = make([]float32, vocabSize*dim)
		syn1 = make([]float32, vocabSize*dim)
		warmFloats = copy(syn0, cfg.Initial.Arena)
		copy(syn1[:warmFloats], cfg.Initial.Out)
	default:
		syn0 = make([]float32, vocabSize*dim)
		syn1 = make([]float32, vocabSize*dim)
	}
	initRng := newXorshift(uint64(cfg.Seed) ^ 0xabcdef)
	for i := warmFloats; i < len(syn0); i++ {
		syn0[i] = (initRng.float() - 0.5) / float32(dim)
	}

	var table []int32
	if fineTune {
		table = unigramTableSparse(sparseCounts)
	} else {
		table = unigramTable(counts)
	}
	trainedTarget := float64(totalTokens) * float64(cfg.Epochs)
	// trainedTokens is the shared progress counter driving the linear
	// learning-rate decay. Workers fold their local token counts in at
	// every LR refresh, so the schedule tracks global progress even when
	// sequence lengths are skewed across workers (a per-worker
	// processed*workers estimate decays too fast for workers holding the
	// long sequences and too slow for the rest).
	var trainedTokens atomic.Int64

	var wg sync.WaitGroup
	workers := cfg.Workers
	if workers > nSeqs && nSeqs > 0 {
		workers = nSeqs
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := newXorshift(uint64(cfg.Seed)*0x9e37 + uint64(worker)*7919 + 1)
			neu := make([]float32, dim)
			grad := make([]float32, dim)
			var subBuf []int32
			var processed, synced int64
			// untilLR counts down to the next learning-rate refresh so the
			// per-token check is a decrement, not an int64 modulo.
			var untilLR int64
			lr := float32(cfg.LR)
			minLR := float32(cfg.LR / 10000)
			updateLR := func() {
				total := trainedTokens.Add(processed - synced)
				synced = processed
				frac := float32(float64(total) / trainedTarget)
				if frac > 1 {
					frac = 1
				}
				lr = float32(cfg.LR) * (1 - frac)
				if lr < minLR {
					lr = minLR
				}
			}
			for ep := 0; ep < cfg.Epochs; ep++ {
				for si := worker; si < nSeqs; si += workers {
					seq := seqs.Seq(si)
					if cfg.Subsample > 0 {
						if fineTune {
							subBuf = subsampleSparseInto(subBuf[:0], seq, sparseCounts, totalTokens, cfg.Subsample, &rng)
						} else {
							subBuf = subsampleInto(subBuf[:0], seq, counts, totalTokens, cfg.Subsample, &rng)
						}
						seq = subBuf
					}
					for pos, center := range seq {
						if untilLR == 0 {
							updateLR()
							untilLR = 10000
						}
						untilLR--
						processed++
						// Randomized effective window, as in word2vec.
						win := 1 + rng.intn(cfg.Window)
						lo, hi := pos-win, pos+win
						if lo < 0 {
							lo = 0
						}
						if hi >= len(seq) {
							hi = len(seq) - 1
						}
						if cfg.Mode == SkipGram {
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								row := int(seq[c]) * dim
								trainPair(syn0[row:row+dim], syn1, dim, center, table, cfg.Negative, lr, grad, &rng)
							}
						} else {
							// CBOW: average context into neu.
							for d := range neu {
								neu[d] = 0
							}
							n := 0
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								row := int(seq[c]) * dim
								Add(neu, syn0[row:row+dim])
								n++
							}
							if n == 0 {
								continue
							}
							inv := 1 / float32(n)
							for d := range neu {
								neu[d] *= inv
							}
							trainPair(neu, syn1, dim, center, table, cfg.Negative, lr, grad, &rng)
							// grad now holds the input-side gradient;
							// distribute to every context vector.
							for c := lo; c <= hi; c++ {
								if c == pos {
									continue
								}
								row := int(seq[c]) * dim
								Add(syn0[row:row+dim], grad)
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if inPlace != nil {
		inPlace.Arena, inPlace.Out = syn0, syn1
		if syn0Moved || inPlace.Vecs == nil {
			vecs := make([][]float32, vocabSize)
			for i := range vecs {
				vecs[i] = syn0[i*dim : (i+1)*dim : (i+1)*dim]
			}
			inPlace.Vecs = vecs
		} else {
			// The arena did not move: existing views stay valid, only the
			// appended vocabulary rows need views — O(new rows), the common
			// steady-state fine-tune cost.
			for i := len(inPlace.Vecs); i < vocabSize; i++ {
				inPlace.Vecs = append(inPlace.Vecs, syn0[i*dim:(i+1)*dim:(i+1)*dim])
			}
		}
		return inPlace, nil
	}
	vecs := make([][]float32, vocabSize)
	for i := range vecs {
		vecs[i] = syn0[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return &Model{Dim: dim, Arena: syn0, Vecs: vecs, Out: syn1}, nil
}

// growFloats returns s extended with zeros to length n, reporting
// whether the backing array moved. Reallocations reserve ~25% headroom
// so a stream of small fine-tune growths reallocates O(log) times.
func growFloats(s []float32, n int) (out []float32, moved bool) {
	if n <= cap(s) {
		out = s[:n]
		for i := len(s); i < n; i++ {
			out[i] = 0
		}
		return out, false
	}
	out = make([]float32, n, n+n/4)
	copy(out, s)
	return out, true
}

// trainPair performs one positive + k negative updates for input vector in
// against target token (and sampled negatives) through the flat syn1
// arena (row i at [i*dim : (i+1)*dim]). The input-side gradient
// accumulation and the syn1 row update are fused into a single pass over
// the row. On return, grad holds the accumulated input-side gradient; for
// Skip-gram it is applied to in directly, for CBOW the caller distributes
// it.
func trainPair(in, syn1 []float32, dim int, target int32, table []int32, negative int, lr float32, grad []float32, rng *xorshift) {
	in = in[:dim]
	grad = grad[:dim]
	for d := range grad {
		grad[d] = 0
	}
	for k := 0; k <= negative; k++ {
		var tok int32
		var label float32
		if k == 0 {
			tok, label = target, 1
		} else {
			// len(table) is a power of two (tableSizeFor), so the draw is
			// a mask, not a modulo.
			tok = table[rng.next()&uint64(len(table)-1)]
			if tok == target {
				continue
			}
			label = 0
		}
		row := int(tok) * dim
		out := syn1[row : row+dim : row+dim]
		f := Dot(in, out)
		g := (label - sigmoidFast(f)) * lr
		// Fused pass: read out[d] once for the gradient, then overwrite it
		// with the output-side update (the pre-update value feeds grad, so
		// the result matches the two-loop formulation exactly). Unrolled
		// four-wide: every element is independent, so the unroll changes
		// nothing but the instruction-level parallelism.
		n := dim &^ 3
		for d := 0; d < n; d += 4 {
			o0, o1, o2, o3 := out[d], out[d+1], out[d+2], out[d+3]
			grad[d] += g * o0
			grad[d+1] += g * o1
			grad[d+2] += g * o2
			grad[d+3] += g * o3
			out[d] = o0 + g*in[d]
			out[d+1] = o1 + g*in[d+1]
			out[d+2] = o2 + g*in[d+2]
			out[d+3] = o3 + g*in[d+3]
		}
		for d := n; d < dim; d++ {
			o := out[d]
			grad[d] += g * o
			out[d] = o + g*in[d]
		}
	}
	Add(in, grad)
}

// subsampleInto drops frequent tokens with probability 1 - sqrt(t/f(w)),
// appending survivors to dst (pass a reused buffer sliced to length 0 to
// keep the hot loop allocation-free once the buffer has grown).
func subsampleInto(dst, seq []int32, counts []int64, total int64, t float64, rng *xorshift) []int32 {
	for _, tok := range seq {
		freq := float64(counts[tok]) / float64(total)
		if freq > t {
			keep := float32(math.Sqrt(t / freq))
			if rng.float() > keep {
				continue
			}
		}
		dst = append(dst, tok)
	}
	return dst
}

// subsampleSparseInto is subsampleInto over a sparse tally — the
// fine-tune path's counterpart, identical policy.
func subsampleSparseInto(dst, seq []int32, sparse map[int32]int64, total int64, t float64, rng *xorshift) []int32 {
	for _, tok := range seq {
		freq := float64(sparse[tok]) / float64(total)
		if freq > t {
			keep := float32(math.Sqrt(t / freq))
			if rng.float() > keep {
				continue
			}
		}
		dst = append(dst, tok)
	}
	return dst
}
