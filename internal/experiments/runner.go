// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V) on the synthetic scenario suite: quality tables
// for the three matching tasks, the compression and timing tables, and the
// parameter-sweep figures. Each experiment has a runner returning printable
// rows, shared between the tdexp binary and the benchmark harness.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"github.com/tdmatch/tdmatch/internal/baselines"
	"github.com/tdmatch/tdmatch/internal/compress"
	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/expand"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/match"
	"github.com/tdmatch/tdmatch/internal/metrics"
	"github.com/tdmatch/tdmatch/internal/pretrained"
	"github.com/tdmatch/tdmatch/internal/textproc"
	"github.com/tdmatch/tdmatch/internal/walk"
)

// Scale bundles the dataset and training sizes so experiments can run at
// bench scale (Small) or evaluation scale (Standard).
type Scale struct {
	IMDbMovies       int
	CoronaCountries  int
	CoronaGenClaims  int
	CoronaUsrClaims  int
	AuditLevel1      int
	AuditConcepts    int
	AuditDocuments   int
	ClaimsFactor     float64 // scales the Snopes/Politifact pools
	STSPairs         int
	GeneralSentences int

	NumWalks   int
	WalkLength int
	Dim        int
	Epochs     int
	Seed       int64
	Workers    int
}

// Small is the bench/test scale: minutes for the full suite.
var Small = Scale{
	IMDbMovies: 60, CoronaCountries: 12, CoronaGenClaims: 80, CoronaUsrClaims: 30,
	AuditLevel1: 5, AuditConcepts: 10, AuditDocuments: 80, ClaimsFactor: 0.25,
	STSPairs: 150, GeneralSentences: 1500,
	NumWalks: 12, WalkLength: 16, Dim: 48, Epochs: 2, Seed: 7, Workers: 0,
}

// Standard approximates the paper's dataset proportions at laptop scale.
var Standard = Scale{
	IMDbMovies: 250, CoronaCountries: 30, CoronaGenClaims: 300, CoronaUsrClaims: 50,
	AuditLevel1: 8, AuditConcepts: 16, AuditDocuments: 300, ClaimsFactor: 1,
	STSPairs: 600, GeneralSentences: 4000,
	NumWalks: 25, WalkLength: 25, Dim: 80, Epochs: 2, Seed: 7, Workers: 0,
}

// Scenario constructs one of the five datasets at the given scale.
func (sc Scale) Scenario(name string) (*datasets.Scenario, error) {
	switch name {
	case "imdb-wt":
		return datasets.IMDb(datasets.IMDbConfig{Seed: sc.Seed, Movies: sc.IMDbMovies, WithTitle: true, GeneralSentences: sc.GeneralSentences})
	case "imdb-nt":
		return datasets.IMDb(datasets.IMDbConfig{Seed: sc.Seed, Movies: sc.IMDbMovies, WithTitle: false, GeneralSentences: sc.GeneralSentences})
	case "corona-gen":
		return datasets.Corona(datasets.CoronaConfig{Seed: sc.Seed, Countries: sc.CoronaCountries, GenClaims: sc.CoronaGenClaims, GeneralSentences: sc.GeneralSentences}, false)
	case "corona-usr":
		return datasets.Corona(datasets.CoronaConfig{Seed: sc.Seed, Countries: sc.CoronaCountries, UsrClaims: sc.CoronaUsrClaims, GeneralSentences: sc.GeneralSentences}, true)
	case "audit":
		return datasets.Audit(datasets.AuditConfig{Seed: sc.Seed, Level1: sc.AuditLevel1, ConceptsPerCategory: sc.AuditConcepts, Documents: sc.AuditDocuments, GeneralSentences: sc.GeneralSentences})
	case "snopes":
		return datasets.Claims(datasets.ClaimsConfig{Seed: sc.Seed, Facts: int(1100 * sc.ClaimsFactor), Claims: int(120 * sc.ClaimsFactor), OverlapHigh: true, GeneralSentences: sc.GeneralSentences}, "snopes")
	case "politifact":
		return datasets.Claims(datasets.ClaimsConfig{Seed: sc.Seed, Facts: int(1700 * sc.ClaimsFactor), Claims: int(100 * sc.ClaimsFactor), OverlapHigh: false, GeneralSentences: sc.GeneralSentences}, "politifact")
	case "sts-k2":
		return datasets.STS(datasets.STSConfig{Seed: sc.Seed, Pairs: sc.STSPairs, GeneralSentences: sc.GeneralSentences}, 2)
	case "sts-k3":
		return datasets.STS(datasets.STSConfig{Seed: sc.Seed, Pairs: sc.STSPairs, GeneralSentences: sc.GeneralSentences}, 3)
	default:
		return nil, fmt.Errorf("experiments: unknown scenario %q", name)
	}
}

// Pretrained trains the shared pre-trained model substitute for a scenario.
func (sc Scale) Pretrained(s *datasets.Scenario) (*pretrained.Model, error) {
	return pretrained.Train(s.General, embed.Config{
		Dim: sc.Dim, Window: 4, Epochs: 2, Seed: sc.Seed + 9, Workers: sc.Workers,
	})
}

// PipelineOpts selects the graph-method variant to run.
type PipelineOpts struct {
	// Expand applies §III-A expansion with the scenario KB (W-RW-EX).
	Expand bool
	// UseLexicon merges nodes with the scenario lexicon (§II-C).
	UseLexicon bool
	// Bucketing merges numeric nodes (§II-C).
	Bucketing bool
	// Filter overrides the data-node filtering mode.
	Filter graph.FilterMode
	// TFIDFTopK applies under FilterTFIDF.
	TFIDFTopK int
	// MaxNGram caps term size (default 3).
	MaxNGram int
	// DisableMetaEdges drops taxonomy metadata-metadata edges (§V-F2).
	DisableMetaEdges bool
	// Compression: "" (none), "msp" or "ssp" with Ratio, "ssum" with Ratio
	// as the kept-node fraction.
	Compression string
	Ratio       float64
	// Walk/training overrides; zero uses the Scale values.
	NumWalks, WalkLength, Dim, Epochs, Window int
	// KindWeights enables kind-weighted walks (the typed-walk extension).
	KindWeights map[graph.NodeKind]float64
}

// PipelineResult exposes the trained artifacts and costs.
type PipelineResult struct {
	Scenario *datasets.Scenario
	Graph    *graph.Graph
	// OriginalNodes/Edges are the graph sizes before expansion.
	OriginalNodes, OriginalEdges int
	// ExpandedNodes/Edges are sizes after expansion (== original without).
	ExpandedNodes, ExpandedEdges int
	// DocVecs maps document IDs to metadata-node embeddings.
	DocVecs map[string][]float32
	Dim     int
	// TrainTime covers walks + embedding training.
	TrainTime time.Duration
}

// RunPipeline executes graph creation → (expansion) → (compression) →
// walks → embeddings for a scenario and returns the artifacts.
func RunPipeline(s *datasets.Scenario, sc Scale, o PipelineOpts) (*PipelineResult, error) {
	if o.MaxNGram <= 0 {
		o.MaxNGram = 3
	}
	bc := graph.BuildConfig{
		Pre:                  textproc.Preprocessor{RemoveStopwords: true, Stem: true, MaxNGram: o.MaxNGram},
		Filter:               o.Filter,
		TFIDFTopK:            o.TFIDFTopK,
		ConnectMetadata:      true,
		DisableMetadataEdges: o.DisableMetaEdges,
		Bucketing:            o.Bucketing,
	}
	if o.UseLexicon && s.Lexicon != nil && s.Lexicon.Len() > 0 {
		bc.Mergers = append(bc.Mergers, s.Lexicon)
	}
	res, err := graph.Build(s.First, s.Second, bc)
	if err != nil {
		return nil, err
	}
	g := res.Graph
	pr := &PipelineResult{
		Scenario:      s,
		OriginalNodes: g.NumNodes(),
		OriginalEdges: g.NumEdges(),
	}
	if o.Expand {
		expand.Expand(g, s.KB, expand.Options{MaxRelationsPerNode: 64})
	}
	pr.ExpandedNodes = g.NumNodes()
	pr.ExpandedEdges = g.NumEdges()

	switch o.Compression {
	case "msp":
		g = compress.MSP(g, compress.Options{Ratio: o.Ratio, Seed: sc.Seed + 31})
	case "ssp":
		g = compress.SSP(g, compress.Options{Ratio: o.Ratio, Seed: sc.Seed + 31})
	case "ssum":
		g = compress.SSuM(g, o.Ratio, sc.Seed+31)
	}
	pr.Graph = g

	numWalks, length := sc.NumWalks, sc.WalkLength
	if o.NumWalks > 0 {
		numWalks = o.NumWalks
	}
	if o.WalkLength > 0 {
		length = o.WalkLength
	}
	dim := sc.Dim
	if o.Dim > 0 {
		dim = o.Dim
	}
	epochs := sc.Epochs
	if o.Epochs > 0 {
		epochs = o.Epochs
	}
	mode := embed.SkipGram
	window := 3
	if s.Task == datasets.TextToText || s.Task == datasets.TextToStructured {
		mode = embed.CBOW
		window = 15
	}
	if o.Window > 0 {
		window = o.Window
	}

	g.Freeze()
	start := time.Now()
	seqs := walk.GeneratePacked(g, walk.Config{NumWalks: numWalks, Length: length, Seed: sc.Seed,
		Workers: sc.Workers, KindWeights: o.KindWeights})
	em, err := embed.TrainPacked(seqs, g.Cap(), embed.Config{
		Dim: dim, Window: window, Negative: 5, Epochs: epochs,
		Mode: mode, Seed: sc.Seed, Workers: sc.Workers, Subsample: 1e-2,
	})
	if err != nil {
		return nil, err
	}
	pr.TrainTime = time.Since(start)
	pr.Dim = dim

	pr.DocVecs = map[string][]float32{}
	collect := func(ids []string) {
		for _, id := range ids {
			if node, ok := g.MetaNode(id); ok {
				if v := em.Vector(int32(node)); v != nil {
					pr.DocVecs[id] = v
				}
			}
		}
	}
	collect(s.Targets)
	collect(s.Queries)
	return pr, nil
}

// GraphRanker ranks scenario targets with the pipeline's embeddings,
// implementing baselines.Ranker for uniform evaluation.
type GraphRanker struct {
	name string
	s    *datasets.Scenario
	idx  *match.Index
	vecs map[string][]float32
}

// Ranker wraps the pipeline result as a named Ranker ("W-RW" / "W-RW-EX").
func (pr *PipelineResult) Ranker(name string) (*GraphRanker, error) {
	vecs := make([][]float32, len(pr.Scenario.Targets))
	for i, id := range pr.Scenario.Targets {
		vecs[i] = pr.DocVecs[id]
	}
	idx, err := match.NewIndex(pr.Scenario.Targets, vecs, pr.Dim)
	if err != nil {
		return nil, err
	}
	return &GraphRanker{name: name, s: pr.Scenario, idx: idx, vecs: pr.DocVecs}, nil
}

// Name implements baselines.Ranker.
func (r *GraphRanker) Name() string { return r.name }

// Rank implements baselines.Ranker.
func (r *GraphRanker) Rank(queryID string, k int) []match.Scored {
	v := r.vecs[queryID]
	if v == nil {
		return nil
	}
	return r.idx.TopK(v, k)
}

// Index exposes the target index for score combination (Fig. 10).
func (r *GraphRanker) Index() *match.Index { return r.idx }

// QueryVector returns the query embedding (nil if pruned).
func (r *GraphRanker) QueryVector(queryID string) []float32 { return r.vecs[queryID] }

// EvaluateRanker runs a ranker over all scenario queries and scores it.
func EvaluateRanker(s *datasets.Scenario, r baselines.Ranker, ks []int) (metrics.RankSummary, time.Duration) {
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	start := time.Now()
	results := baselines.RankAll(r, s.Queries, maxK)
	elapsed := time.Since(start)
	return metrics.EvaluateRanking(results, s.Truth, ks), elapsed
}

// CombinedRanker averages the graph ranker's cosine scores with the S-BE
// substitute's, the Fig. 10 combination.
type CombinedRanker struct {
	name  string
	graph *GraphRanker
	sbe   *baselines.SBE
}

// NewCombinedRanker pairs a graph ranker with an S-BE baseline.
func NewCombinedRanker(g *GraphRanker, sbe *baselines.SBE) *CombinedRanker {
	return &CombinedRanker{name: g.Name() + "&S-BE", graph: g, sbe: sbe}
}

// Name implements baselines.Ranker.
func (c *CombinedRanker) Name() string { return c.name }

// Rank implements baselines.Ranker.
func (c *CombinedRanker) Rank(queryID string, k int) []match.Scored {
	gv := c.graph.QueryVector(queryID)
	if gv == nil {
		return c.sbe.Rank(queryID, k)
	}
	scored, err := c.graph.Index().TopKCombined(c.sbe.Index(), gv, c.sbe.QueryVector(queryID), 1, 1, k)
	if err != nil {
		// Index mismatch cannot happen (both built over s.Targets); fall
		// back to the graph ranking defensively.
		return c.graph.Rank(queryID, k)
	}
	return scored
}

// MAPKey is the cutoff used for single-number Mean Average Precision
// reports in the figures (the paper plots "Mean Avg Precision").
const MAPKey = 5

// ScenarioNames lists the five figure scenarios in paper order.
var ScenarioNames = []string{"imdb-wt", "corona-gen", "audit", "politifact", "snopes"}

// sortedKeys returns map keys sorted, for deterministic printing.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
