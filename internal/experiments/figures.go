package experiments

import (
	"fmt"

	"github.com/tdmatch/tdmatch/internal/baselines"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/metrics"
)

// sweepValues are the x-axes of Figures 6 and 7.
var sweepValues = []int{5, 10, 20, 30, 40, 50}

// Fig6 reproduces Figure 6: Mean Average Precision as the walk length
// grows, for all five scenarios.
func Fig6(sc Scale) (*Table, error) {
	return sweepFigure(sc, "fig6", "Match quality with increasing walk length (paper Fig. 6)",
		func(o *PipelineOpts, v int) { o.WalkLength = v })
}

// Fig7 reproduces Figure 7: MAP as the number of walks per node grows.
func Fig7(sc Scale) (*Table, error) {
	return sweepFigure(sc, "fig7", "Match quality with increasing number of walks (paper Fig. 7)",
		func(o *PipelineOpts, v int) { o.NumWalks = v })
}

func sweepFigure(sc Scale, id, title string, set func(*PipelineOpts, int)) (*Table, error) {
	header := make([]string, len(sweepValues))
	for i, v := range sweepValues {
		header[i] = fmt.Sprintf("%d", v)
	}
	t := &Table{ID: id, Title: title, Header: header}
	for _, name := range ScenarioNames {
		s, err := sc.Scenario(name)
		if err != nil {
			return nil, err
		}
		values := make([]float64, 0, len(sweepValues))
		for _, v := range sweepValues {
			opts := PipelineOpts{UseLexicon: true}
			set(&opts, v)
			pr, err := RunPipeline(s, sc, opts)
			if err != nil {
				return nil, err
			}
			r, err := pr.Ranker("W-RW")
			if err != nil {
				return nil, err
			}
			sum, _ := EvaluateRanker(s, r, []int{MAPKey})
			values = append(values, sum.MAPAt[MAPKey])
		}
		t.Add(name, "W-RW", values...)
	}
	return t, nil
}

// Fig8 reproduces Figure 8: total walk + training time as the graph grows.
// Graphs of increasing size come from STS datasets of growing pair counts,
// expanded with the concept KB, as in §V-F1.
func Fig8(sc Scale) (*Table, error) {
	t := &Table{ID: "fig8", Title: "Execution time with increasing graph size (paper Fig. 8)",
		Header: []string{"nodes", "edges", "seconds"}}
	base := sc.STSPairs
	for _, mult := range []int{1, 2, 4, 8} {
		scaled := sc
		scaled.STSPairs = base * mult
		s, err := scaled.Scenario("sts-k2")
		if err != nil {
			return nil, err
		}
		pr, err := RunPipeline(s, scaled, PipelineOpts{UseLexicon: true, Expand: true})
		if err != nil {
			return nil, err
		}
		t.Add("sts", fmt.Sprintf("x%d", mult),
			float64(pr.Graph.NumNodes()), float64(pr.Graph.NumEdges()), pr.TrainTime.Seconds())
	}
	return t, nil
}

// Fig9 reproduces Figure 9: the impact of data-node filtering — no
// filtering (Normal), per-document TF-IDF selection, and the paper's
// Intersect technique — on MAP for every scenario. For TF-IDF the best of
// the swept per-document budgets is reported, as in the paper.
func Fig9(sc Scale) (*Table, error) {
	t := &Table{ID: "fig9", Title: "Impact of data node filtering (paper Fig. 9)",
		Header: []string{"Normal", "TFIDF", "Intersect"}}
	tfidfKs := []int{5, 10, 20}
	for _, name := range ScenarioNames {
		s, err := sc.Scenario(name)
		if err != nil {
			return nil, err
		}
		mapFor := func(opts PipelineOpts) (float64, error) {
			pr, err := RunPipeline(s, sc, opts)
			if err != nil {
				return 0, err
			}
			r, err := pr.Ranker("W-RW")
			if err != nil {
				return 0, err
			}
			sum, _ := EvaluateRanker(s, r, []int{MAPKey})
			return sum.MAPAt[MAPKey], nil
		}
		normal, err := mapFor(PipelineOpts{UseLexicon: true, Filter: graph.FilterNone})
		if err != nil {
			return nil, err
		}
		bestTFIDF := 0.0
		for _, k := range tfidfKs {
			v, err := mapFor(PipelineOpts{UseLexicon: true, Filter: graph.FilterTFIDF, TFIDFTopK: k})
			if err != nil {
				return nil, err
			}
			if v > bestTFIDF {
				bestTFIDF = v
			}
		}
		intersect, err := mapFor(PipelineOpts{UseLexicon: true, Filter: graph.FilterIntersect})
		if err != nil {
			return nil, err
		}
		t.Add(name, "W-RW", normal, bestTFIDF, intersect)
	}
	return t, nil
}

// Fig10 reproduces Figure 10: averaging our cosine scores with the
// pre-trained sentence embedder improves over either alone.
func Fig10(sc Scale) (*Table, error) {
	t := &Table{ID: "fig10", Title: "Our method combined with SentenceBERT (paper Fig. 10)",
		Header: []string{"W-RW", "W-RW&S-BE"}}
	for _, name := range ScenarioNames {
		s, err := sc.Scenario(name)
		if err != nil {
			return nil, err
		}
		pm, err := sc.Pretrained(s)
		if err != nil {
			return nil, err
		}
		sbe, err := baselines.NewSBE(s, pm)
		if err != nil {
			return nil, err
		}
		pr, err := RunPipeline(s, sc, PipelineOpts{UseLexicon: true})
		if err != nil {
			return nil, err
		}
		wrw, err := pr.Ranker("W-RW")
		if err != nil {
			return nil, err
		}
		combined := NewCombinedRanker(wrw, sbe)
		sumW, _ := EvaluateRanker(s, wrw, []int{MAPKey})
		sumC, _ := EvaluateRanker(s, combined, []int{MAPKey})
		t.Add(name, "MAP@5", sumW.MAPAt[MAPKey], sumC.MAPAt[MAPKey])
	}
	return t, nil
}

// NGrams reproduces the §V-F1 token-count ablation: MAP as the maximum
// number of tokens per term grows from 1 to 4.
func NGrams(sc Scale) (*Table, error) {
	ns := []int{1, 2, 3, 4}
	header := make([]string, len(ns))
	for i, n := range ns {
		header[i] = fmt.Sprintf("n=%d", n)
	}
	t := &Table{ID: "ngrams", Title: "Match quality with increasing tokens per term (paper §V-F1)", Header: header}
	for _, name := range ScenarioNames {
		s, err := sc.Scenario(name)
		if err != nil {
			return nil, err
		}
		values := make([]float64, 0, len(ns))
		for _, n := range ns {
			pr, err := RunPipeline(s, sc, PipelineOpts{UseLexicon: true, MaxNGram: n})
			if err != nil {
				return nil, err
			}
			r, err := pr.Ranker("W-RW")
			if err != nil {
				return nil, err
			}
			sum, _ := EvaluateRanker(s, r, []int{MAPKey})
			values = append(values, sum.MAPAt[MAPKey])
		}
		t.Add(name, "W-RW", values...)
	}
	return t, nil
}

// Merging reproduces the §V-F2 node-merging ablation: bucketing for the
// numeric CoronaCheck data, lexicon merging for the entity-variant IMDb
// data and the acronym-heavy Audit data.
func Merging(sc Scale) (*Table, error) {
	t := &Table{ID: "merging", Title: "Node merging ablation (paper §V-F2)",
		Header: []string{"base", "merged"}}
	cases := []struct {
		scenario string
		opts     PipelineOpts
	}{
		{"corona-gen", PipelineOpts{Bucketing: true}},
		{"imdb-wt", PipelineOpts{UseLexicon: true}},
		{"audit", PipelineOpts{UseLexicon: true}},
	}
	for _, c := range cases {
		s, err := sc.Scenario(c.scenario)
		if err != nil {
			return nil, err
		}
		mapFor := func(opts PipelineOpts) (float64, error) {
			pr, err := RunPipeline(s, sc, opts)
			if err != nil {
				return 0, err
			}
			r, err := pr.Ranker("W-RW")
			if err != nil {
				return 0, err
			}
			sum, _ := EvaluateRanker(s, r, []int{MAPKey})
			return sum.MAPAt[MAPKey], nil
		}
		base, err := mapFor(PipelineOpts{})
		if err != nil {
			return nil, err
		}
		merged, err := mapFor(c.opts)
		if err != nil {
			return nil, err
		}
		t.Add(c.scenario, "W-RW", base, merged)
	}
	return t, nil
}

// MetaEdges reproduces the §V-F2 metadata-edge ablation on the taxonomy:
// Node F-score at the Table III cutoffs with and without edges between
// hierarchically related concepts.
func MetaEdges(sc Scale) (*Table, error) {
	t := &Table{ID: "metaedges", Title: "Connecting metadata nodes ablation (paper §V-F2)",
		Header: []string{"NodeF@1", "NodeF@3", "NodeF@5", "NodeF@10"}}
	s, err := sc.Scenario("audit")
	if err != nil {
		return nil, err
	}
	paths := s.First.Paths()
	truthPaths := map[string][][]string{}
	for q, ts := range s.Truth {
		for _, id := range ts {
			truthPaths[q] = append(truthPaths[q], paths[id])
		}
	}
	for _, disable := range []bool{false, true} {
		pr, err := RunPipeline(s, sc, PipelineOpts{UseLexicon: true, DisableMetaEdges: disable})
		if err != nil {
			return nil, err
		}
		r, err := pr.Ranker("W-RW")
		if err != nil {
			return nil, err
		}
		ranked := baselines.RankAll(r, s.Queries, 10)
		values := make([]float64, 0, 4)
		for _, k := range taxonomyKs {
			pred := map[string][][]string{}
			for q, ids := range ranked {
				top := ids
				if len(top) > k {
					top = top[:k]
				}
				for _, id := range top {
					pred[q] = append(pred[q], paths[id])
				}
			}
			sum := metrics.EvaluateTaxonomy(pred, truthPaths)
			values = append(values, sum.Node.F)
		}
		method := "with-edges"
		if disable {
			method = "no-edges"
		}
		t.Add("audit", method, values...)
	}
	return t, nil
}
