package experiments

import (
	"fmt"
)

// Runner regenerates one paper artefact at the given scale.
type Runner func(Scale) (*Table, error)

// Registry maps experiment IDs to runners, in the DESIGN.md index.
var Registry = map[string]Runner{
	"table1":    Table1,
	"table2":    Table2,
	"table3":    Table3,
	"table4":    Table4,
	"table5":    Table5,
	"table6":    Table6,
	"table7":    Table7,
	"table8":    Table8,
	"fig6":      Fig6,
	"fig7":      Fig7,
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"ngrams":    NGrams,
	"merging":   Merging,
	"metaedges": MetaEdges,
	"blocking":  Blocking,
	"walkbias":  WalkBias,
}

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	return sortedKeys(Registry)
}

// Run executes an experiment by ID.
func Run(id string, sc Scale) (*Table, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(sc)
}
