package experiments

import (
	"time"

	"github.com/tdmatch/tdmatch/internal/baselines"
	"github.com/tdmatch/tdmatch/internal/graph"
	"github.com/tdmatch/tdmatch/internal/match"
)

// This file holds ablations for the §VII future-work extensions this
// library implements beyond the paper: token blocking for matching and
// kind-weighted (typed) walks.

// blockedRanker wraps a GraphRanker with token blocking over the target
// texts.
type blockedRanker struct {
	inner   *GraphRanker
	blocker *match.Blocker
	queries map[string]string
}

func newBlockedRanker(g *GraphRanker) *blockedRanker {
	s := g.s
	texts := make([]string, len(s.Targets))
	for i, id := range s.Targets {
		d, _ := s.First.Doc(id)
		texts[i] = d.Text()
	}
	qt := make(map[string]string, len(s.Queries))
	for _, q := range s.Queries {
		d, _ := s.Second.Doc(q)
		qt[q] = d.Text()
	}
	return &blockedRanker{inner: g, blocker: match.NewBlocker(texts), queries: qt}
}

// Name implements baselines.Ranker.
func (b *blockedRanker) Name() string { return b.inner.Name() + "+blocking" }

// Rank implements baselines.Ranker.
func (b *blockedRanker) Rank(queryID string, k int) []match.Scored {
	v := b.inner.QueryVector(queryID)
	if v == nil {
		return nil
	}
	return b.inner.Index().TopKBlocked(b.blocker, b.queries[queryID], v, k)
}

// Blocking measures the token-blocking trade-off: MRR, MAP@5 and total
// test time for the full scan vs the blocked scan, on the two table
// scenarios where candidate sets are largest.
func Blocking(sc Scale) (*Table, error) {
	t := &Table{ID: "blocking", Title: "Token-blocking ablation (library extension, paper §VII)",
		Header: []string{"MRR", "MAP@5", "Test(s)"}}
	for _, name := range []string{"imdb-wt", "corona-gen"} {
		s, err := sc.Scenario(name)
		if err != nil {
			return nil, err
		}
		pr, err := RunPipeline(s, sc, PipelineOpts{UseLexicon: true})
		if err != nil {
			return nil, err
		}
		full, err := pr.Ranker("W-RW")
		if err != nil {
			return nil, err
		}
		blocked := newBlockedRanker(full)
		for _, r := range []baselines.Ranker{full, blocked} {
			start := time.Now()
			sum, _ := EvaluateRanker(s, r, []int{5})
			elapsed := time.Since(start)
			t.Add(name, r.Name(), sum.MRR, sum.MAPAt[5], elapsed.Seconds())
		}
	}
	return t, nil
}

// WalkBias measures kind-weighted walks: down-weighting high-degree
// attribute hubs changes what walks see. Weights 1 (uniform, the paper's
// walk), 0.25 and 0 are compared on the table scenarios.
func WalkBias(sc Scale) (*Table, error) {
	t := &Table{ID: "walkbias", Title: "Kind-weighted walks ablation (library extension, paper §VII)",
		Header: []string{"MRR", "MAP@5"}}
	weights := []struct {
		label string
		w     float64
	}{{"attr=1.0", 1}, {"attr=0.25", 0.25}, {"attr=0", 0}}
	for _, name := range []string{"imdb-wt", "corona-gen"} {
		s, err := sc.Scenario(name)
		if err != nil {
			return nil, err
		}
		for _, spec := range weights {
			pr, err := RunPipeline(s, sc, PipelineOpts{
				UseLexicon:  true,
				KindWeights: map[graph.NodeKind]float64{graph.Attribute: spec.w},
			})
			if err != nil {
				return nil, err
			}
			r, err := pr.Ranker("W-RW")
			if err != nil {
				return nil, err
			}
			sum, _ := EvaluateRanker(s, r, []int{5})
			t.Add(name, spec.label, sum.MRR, sum.MAPAt[5])
		}
	}
	return t, nil
}
