package experiments

import (
	"fmt"
	"time"

	"github.com/tdmatch/tdmatch/internal/baselines"
	"github.com/tdmatch/tdmatch/internal/datasets"
	"github.com/tdmatch/tdmatch/internal/embed"
	"github.com/tdmatch/tdmatch/internal/metrics"
)

var rankKs = []int{1, 5, 20}

// qualityHeader matches the paper's quality tables.
var qualityHeader = []string{"MRR", "MAP@1", "MAP@5", "MAP@20", "HasPos@1", "HasPos@5", "HasPos@20"}

func summaryValues(s metrics.RankSummary) []float64 {
	return []float64{s.MRR,
		s.MAPAt[1], s.MAPAt[5], s.MAPAt[20],
		s.HasPosAt[1], s.HasPosAt[5], s.HasPosAt[20]}
}

// ourRankers builds W-RW and W-RW-EX for a scenario. Node-merging
// resources are part of the method's default configuration (§V-F2):
// the lexicon everywhere, bucketing on the numeric CoronaCheck data.
func ourRankers(s *datasets.Scenario, sc Scale) (*GraphRanker, *GraphRanker, error) {
	bucketing := s.Name == "corona-gen" || s.Name == "corona-usr"
	base, err := RunPipeline(s, sc, PipelineOpts{UseLexicon: true, Bucketing: bucketing})
	if err != nil {
		return nil, nil, err
	}
	wrw, err := base.Ranker("W-RW")
	if err != nil {
		return nil, nil, err
	}
	expanded, err := RunPipeline(s, sc, PipelineOpts{UseLexicon: true, Bucketing: bucketing, Expand: true})
	if err != nil {
		return nil, nil, err
	}
	wrwEx, err := expanded.Ranker("W-RW-EX")
	if err != nil {
		return nil, nil, err
	}
	return wrw, wrwEx, nil
}

// runQualitySection evaluates the named methods on a scenario and appends
// rows to the table under the given section.
func runQualitySection(t *Table, section string, s *datasets.Scenario, sc Scale, withDeepM bool) error {
	pm, err := sc.Pretrained(s)
	if err != nil {
		return err
	}
	sbe, err := baselines.NewSBE(s, pm)
	if err != nil {
		return err
	}
	wrw, wrwEx, err := ourRankers(s, sc)
	if err != nil {
		return err
	}
	supCfg := baselines.SupervisedConfig{Seed: sc.Seed, Epochs: 10}
	rank, err := baselines.NewRank(s, pm, supCfg)
	if err != nil {
		return err
	}
	ditto, err := baselines.NewDitto(s, pm, supCfg)
	if err != nil {
		return err
	}
	tapas, err := baselines.NewTapas(s, pm, supCfg)
	if err != nil {
		return err
	}
	rankers := []baselines.Ranker{sbe, wrw, wrwEx, rank}
	if withDeepM {
		deepm, err := baselines.NewDeepMatcher(s, pm, supCfg)
		if err != nil {
			return err
		}
		rankers = append(rankers, deepm)
	}
	rankers = append(rankers, ditto, tapas)
	for _, r := range rankers {
		sum, _ := EvaluateRanker(s, r, rankKs)
		t.Add(section, r.Name(), summaryValues(sum)...)
	}
	return nil
}

// Table1 reproduces Table I: IMDb WT and NT match quality.
func Table1(sc Scale) (*Table, error) {
	t := &Table{ID: "table1", Title: "IMDb scenario match quality (paper Table I)", Header: qualityHeader}
	for _, variant := range []string{"imdb-wt", "imdb-nt"} {
		s, err := sc.Scenario(variant)
		if err != nil {
			return nil, err
		}
		section := "WT"
		if variant == "imdb-nt" {
			section = "NT"
		}
		if err := runQualitySection(t, section, s, sc, false); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table2 reproduces Table II: CoronaCheck Gen and Usr match quality.
func Table2(sc Scale) (*Table, error) {
	t := &Table{ID: "table2", Title: "CoronaCheck scenario match quality (paper Table II)", Header: qualityHeader}
	for _, variant := range []string{"corona-gen", "corona-usr"} {
		s, err := sc.Scenario(variant)
		if err != nil {
			return nil, err
		}
		section := "Gen"
		if variant == "corona-usr" {
			section = "Usr"
		}
		if err := runQualitySection(t, section, s, sc, true); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// taxonomyKs are the Table III cutoffs.
var taxonomyKs = []int{1, 3, 5, 10}

// Table3 reproduces Table III: Exact and Node P/R/F on the audit taxonomy.
func Table3(sc Scale) (*Table, error) {
	t := &Table{ID: "table3", Title: "Audit structured-text matching (paper Table III)",
		Header: []string{"ExactP", "ExactR", "ExactF", "NodeP", "NodeR", "NodeF"}}
	s, err := sc.Scenario("audit")
	if err != nil {
		return nil, err
	}
	pm, err := sc.Pretrained(s)
	if err != nil {
		return nil, err
	}
	paths := s.First.Paths()

	d2v, err := baselines.NewD2Vec(s, embed.Config{Dim: sc.Dim, Epochs: 6, Seed: sc.Seed, Workers: sc.Workers})
	if err != nil {
		return nil, err
	}
	sbe, err := baselines.NewSBE(s, pm)
	if err != nil {
		return nil, err
	}
	wrw, wrwEx, err := ourRankers(s, sc)
	if err != nil {
		return nil, err
	}
	rank, err := baselines.NewRank(s, pm, baselines.SupervisedConfig{Seed: sc.Seed, Epochs: 10})
	if err != nil {
		return nil, err
	}
	lbe, err := baselines.NewMultiLabel(s, baselines.SupervisedConfig{Seed: sc.Seed, Epochs: 10})
	if err != nil {
		return nil, err
	}
	rankers := []baselines.Ranker{d2v, sbe, wrw, wrwEx, rank, lbe}
	// Rank once at max K, evaluate at every cutoff.
	maxK := taxonomyKs[len(taxonomyKs)-1]
	ranked := map[string]map[string][]string{}
	for _, r := range rankers {
		ranked[r.Name()] = baselines.RankAll(r, s.Queries, maxK)
	}
	truthPaths := map[string][][]string{}
	for q, ts := range s.Truth {
		for _, id := range ts {
			truthPaths[q] = append(truthPaths[q], paths[id])
		}
	}
	for _, k := range taxonomyKs {
		section := fmt.Sprintf("K=%d", k)
		for _, r := range rankers {
			pred := map[string][][]string{}
			for q, ids := range ranked[r.Name()] {
				top := ids
				if len(top) > k {
					top = top[:k]
				}
				for _, id := range top {
					pred[q] = append(pred[q], paths[id])
				}
			}
			sum := metrics.EvaluateTaxonomy(pred, truthPaths)
			t.Add(section, r.Name(),
				sum.Exact.P, sum.Exact.R, sum.Exact.F,
				sum.Node.P, sum.Node.R, sum.Node.F)
		}
	}
	return t, nil
}

// textQualitySection evaluates the text-to-text method set of Tables IV-VI.
func textQualitySection(t *Table, section string, s *datasets.Scenario, sc Scale) error {
	pm, err := sc.Pretrained(s)
	if err != nil {
		return err
	}
	sbe, err := baselines.NewSBE(s, pm)
	if err != nil {
		return err
	}
	wrw, wrwEx, err := ourRankers(s, sc)
	if err != nil {
		return err
	}
	rank, err := baselines.NewRank(s, pm, baselines.SupervisedConfig{Seed: sc.Seed, Epochs: 10})
	if err != nil {
		return err
	}
	for _, r := range []baselines.Ranker{sbe, wrw, wrwEx, rank} {
		sum, _ := EvaluateRanker(s, r, rankKs)
		t.Add(section, r.Name(), summaryValues(sum)...)
	}
	return nil
}

// Table4 reproduces Table IV: Politifact.
func Table4(sc Scale) (*Table, error) {
	t := &Table{ID: "table4", Title: "Politifact match quality (paper Table IV)", Header: qualityHeader}
	s, err := sc.Scenario("politifact")
	if err != nil {
		return nil, err
	}
	return t, textQualitySection(t, "all", s, sc)
}

// Table5 reproduces Table V: Snopes.
func Table5(sc Scale) (*Table, error) {
	t := &Table{ID: "table5", Title: "Snopes match quality (paper Table V)", Header: qualityHeader}
	s, err := sc.Scenario("snopes")
	if err != nil {
		return nil, err
	}
	return t, textQualitySection(t, "all", s, sc)
}

// Table6 reproduces Table VI: STS at thresholds k=2 and k=3.
func Table6(sc Scale) (*Table, error) {
	t := &Table{ID: "table6", Title: "STS match quality (paper Table VI)", Header: qualityHeader}
	for _, variant := range []string{"sts-k2", "sts-k3"} {
		s, err := sc.Scenario(variant)
		if err != nil {
			return nil, err
		}
		section := "k=2"
		if variant == "sts-k3" {
			section = "k=3"
		}
		if err := textQualitySection(t, section, s, sc); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Table7 reproduces Table VII: train and test times per method per task.
// One representative scenario per task column: corona-gen (text to data),
// audit (structured text), snopes (text to text).
func Table7(sc Scale) (*Table, error) {
	t := &Table{ID: "table7", Title: "Train and test execution times in seconds (paper Table VII)",
		Header: []string{"Train(s)", "Test(s)"}}
	tasks := []struct{ section, scenario string }{
		{"text-to-data", "corona-gen"},
		{"structured", "audit"},
		{"text-to-text", "snopes"},
	}
	for _, task := range tasks {
		s, err := sc.Scenario(task.scenario)
		if err != nil {
			return nil, err
		}
		pm, err := sc.Pretrained(s)
		if err != nil {
			return nil, err
		}

		// W2VEC.
		start := time.Now()
		w2v, err := baselines.NewW2Vec(s, embed.Config{Dim: sc.Dim, Window: 3, Epochs: 3, Seed: sc.Seed, Workers: sc.Workers})
		if err != nil {
			return nil, err
		}
		train := time.Since(start)
		_, test := EvaluateRanker(s, w2v, rankKs)
		t.Add(task.section, "W2VEC", train.Seconds(), test.Seconds())

		// D2VEC.
		start = time.Now()
		d2v, err := baselines.NewD2Vec(s, embed.Config{Dim: sc.Dim, Epochs: 6, Seed: sc.Seed, Workers: sc.Workers})
		if err != nil {
			return nil, err
		}
		train = time.Since(start)
		_, test = EvaluateRanker(s, d2v, rankKs)
		t.Add(task.section, "D2VEC", train.Seconds(), test.Seconds())

		// S-BE: no training on the corpora (pre-trained).
		sbe, err := baselines.NewSBE(s, pm)
		if err != nil {
			return nil, err
		}
		_, test = EvaluateRanker(s, sbe, rankKs)
		t.Add(task.section, "S-BE", 0, test.Seconds())

		// W-RW (ours).
		pr, err := RunPipeline(s, sc, PipelineOpts{UseLexicon: true})
		if err != nil {
			return nil, err
		}
		wrw, err := pr.Ranker("W-RW")
		if err != nil {
			return nil, err
		}
		_, test = EvaluateRanker(s, wrw, rankKs)
		t.Add(task.section, "W-RW", pr.TrainTime.Seconds(), test.Seconds())

		// RANK*.
		start = time.Now()
		rank, err := baselines.NewRank(s, pm, baselines.SupervisedConfig{Seed: sc.Seed, Epochs: 10})
		if err != nil {
			return nil, err
		}
		train = time.Since(start)
		_, test = EvaluateRanker(s, rank, rankKs)
		t.Add(task.section, "RANK*", train.Seconds(), test.Seconds())

		// L-BE* only for the taxonomy task (multi-label classification).
		if task.scenario == "audit" {
			start = time.Now()
			lbe, err := baselines.NewMultiLabel(s, baselines.SupervisedConfig{Seed: sc.Seed, Epochs: 10})
			if err != nil {
				return nil, err
			}
			train = time.Since(start)
			_, test = EvaluateRanker(s, lbe, rankKs)
			t.Add(task.section, "L-BE*", train.Seconds(), test.Seconds())
		}
	}
	return t, nil
}

// Table8 reproduces Table VIII: graph sizes and MRR for the original graph,
// the expanded graph, MSP at ratios 0.5 and 0.25, and the SSuM-style
// baseline, across all five scenarios.
func Table8(sc Scale) (*Table, error) {
	t := &Table{ID: "table8", Title: "Compression performance: nodes, edges, MRR (paper Table VIII)",
		Header: []string{"#N", "#E", "MRR"}}
	variants := []struct {
		method string
		opts   PipelineOpts
	}{
		{"Original", PipelineOpts{UseLexicon: true}},
		{"Expanded", PipelineOpts{UseLexicon: true, Expand: true}},
		{"MSP(0.5)", PipelineOpts{UseLexicon: true, Expand: true, Compression: "msp", Ratio: 0.5}},
		{"MSP(0.25)", PipelineOpts{UseLexicon: true, Expand: true, Compression: "msp", Ratio: 0.25}},
		{"SSuM(0.1)", PipelineOpts{UseLexicon: true, Expand: true, Compression: "ssum", Ratio: 0.6}},
	}
	for _, name := range ScenarioNames {
		s, err := sc.Scenario(name)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			pr, err := RunPipeline(s, sc, v.opts)
			if err != nil {
				return nil, err
			}
			r, err := pr.Ranker("W-RW")
			if err != nil {
				return nil, err
			}
			sum, _ := EvaluateRanker(s, r, []int{1})
			t.Add(name, v.method, float64(pr.Graph.NumNodes()), float64(pr.Graph.NumEdges()), sum.MRR)
		}
	}
	return t, nil
}
