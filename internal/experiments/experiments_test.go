package experiments

import (
	"bytes"
	"github.com/tdmatch/tdmatch/internal/baselines"
	"strings"
	"testing"
)

// micro is an even smaller scale than Small, for unit tests.
var micro = Scale{
	IMDbMovies: 25, CoronaCountries: 8, CoronaGenClaims: 40, CoronaUsrClaims: 15,
	AuditLevel1: 4, AuditConcepts: 7, AuditDocuments: 40, ClaimsFactor: 0.12,
	STSPairs: 80, GeneralSentences: 500,
	NumWalks: 8, WalkLength: 12, Dim: 32, Epochs: 2, Seed: 3, Workers: 2,
}

func TestScaleScenarios(t *testing.T) {
	for _, name := range []string{"imdb-wt", "imdb-nt", "corona-gen", "corona-usr",
		"audit", "snopes", "politifact", "sts-k2", "sts-k3"} {
		s, err := micro.Scenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name && !strings.HasPrefix(name, "sts") {
			t.Errorf("scenario name %q for requested %q", s.Name, name)
		}
	}
	if _, err := micro.Scenario("bogus"); err == nil {
		t.Error("want error for unknown scenario")
	}
}

func TestRunPipelineAndRanker(t *testing.T) {
	s, err := micro.Scenario("imdb-wt")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPipeline(s, micro, PipelineOpts{UseLexicon: true})
	if err != nil {
		t.Fatal(err)
	}
	if pr.OriginalNodes == 0 || pr.OriginalEdges == 0 {
		t.Fatalf("empty graph: %+v", pr)
	}
	if pr.ExpandedNodes != pr.OriginalNodes {
		t.Error("no-expansion run changed node count")
	}
	if len(pr.DocVecs) == 0 {
		t.Fatal("no document vectors")
	}
	r, err := pr.Ranker("W-RW")
	if err != nil {
		t.Fatal(err)
	}
	sum, elapsed := EvaluateRanker(s, r, []int{1, 5})
	if sum.Queries == 0 || elapsed <= 0 {
		t.Fatalf("evaluation empty: %+v", sum)
	}
	// The graph method must beat random guessing comfortably.
	random := 1.0 / float64(len(s.Targets))
	if sum.MRR < 5*random {
		t.Errorf("W-RW MRR %.3f vs random %.3f", sum.MRR, random)
	}
}

func TestRunPipelineExpansionGrowsGraph(t *testing.T) {
	s, err := micro.Scenario("imdb-wt")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPipeline(s, micro, PipelineOpts{UseLexicon: true, Expand: true})
	if err != nil {
		t.Fatal(err)
	}
	if pr.ExpandedEdges <= pr.OriginalEdges {
		t.Errorf("expansion added no edges: %d -> %d", pr.OriginalEdges, pr.ExpandedEdges)
	}
}

func TestRunPipelineCompressionShrinksGraph(t *testing.T) {
	s, err := micro.Scenario("corona-gen")
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPipeline(s, micro, PipelineOpts{UseLexicon: true, Expand: true, Compression: "msp", Ratio: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Graph.NumNodes() >= pr.ExpandedNodes {
		t.Errorf("MSP did not shrink: %d -> %d", pr.ExpandedNodes, pr.Graph.NumNodes())
	}
	r, err := pr.Ranker("W-RW")
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := EvaluateRanker(s, r, []int{1})
	if sum.Queries == 0 {
		t.Error("no queries evaluated after compression")
	}
}

func TestCombinedRanker(t *testing.T) {
	s, err := micro.Scenario("snopes")
	if err != nil {
		t.Fatal(err)
	}
	pm, err := micro.Pretrained(s)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPipeline(s, micro, PipelineOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wrw, err := pr.Ranker("W-RW")
	if err != nil {
		t.Fatal(err)
	}
	sbe, err := baselines.NewSBE(s, pm)
	if err != nil {
		t.Fatal(err)
	}
	comb := NewCombinedRanker(wrw, sbe)
	if comb.Name() != "W-RW&S-BE" {
		t.Errorf("name = %s", comb.Name())
	}
	got := comb.Rank(s.Queries[0], 5)
	if len(got) != 5 {
		t.Errorf("combined rank = %d results", len(got))
	}
}

func TestTablePrinting(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"MRR", "#N"}}
	tbl.Add("sec1", "method-a", 0.512, 12345)
	tbl.Add("sec1", "method-b", 0.3, 200)
	tbl.Add("sec2", "method-a", 0.9, 7)
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "method-a", "0.512", "12345", "sec2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if v, ok := tbl.Value("sec1", "method-b", 0); !ok || v != 0.3 {
		t.Errorf("Value = %f %v", v, ok)
	}
	if _, ok := tbl.Value("nope", "x", 0); ok {
		t.Error("missing Value must be !ok")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "fig6", "fig7", "fig8", "fig9", "fig10",
		"ngrams", "merging", "metaedges", "blocking", "walkbias"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
	if _, err := Run("bogus", micro); err == nil {
		t.Error("want error for unknown id")
	}
}

// TestRunMergingExperiment exercises one real experiment end to end at
// micro scale (merging is among the cheapest).
func TestRunMergingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tbl, err := Run("merging", micro)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if len(r.Values) != 2 {
			t.Errorf("row %v has %d values", r.Section, len(r.Values))
		}
	}
}

// TestRunFig10Experiment checks the combination experiment runs and the
// combined score is sane.
func TestRunFig10Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tiny := micro
	tiny.STSPairs = 60
	tbl, err := Run("fig10", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(ScenarioNames) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		for _, v := range r.Values {
			if v < 0 || v > 1 {
				t.Errorf("MAP out of range: %v", r)
			}
		}
	}
}
