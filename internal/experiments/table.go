package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result: named columns, rows grouped by
// section (dataset variant or K value), one row per method.
type Table struct {
	// ID is the experiment identifier ("table1", "fig6", ...).
	ID string
	// Title restates the paper artefact being reproduced.
	Title string
	// Header names the value columns.
	Header []string
	// Rows in display order.
	Rows []Row
}

// Row is one method's numbers within a section.
type Row struct {
	Section string
	Method  string
	Values  []float64
}

// Add appends a row.
func (t *Table) Add(section, method string, values ...float64) {
	t.Rows = append(t.Rows, Row{Section: section, Method: method, Values: values})
}

// Fprint renders the table with aligned columns, section separators and
// three-decimal values.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
		if widths[i] < 7 {
			widths[i] = 7
		}
	}
	methodW, sectionW := len("method"), len("section")
	for _, r := range t.Rows {
		if len(r.Method) > methodW {
			methodW = len(r.Method)
		}
		if len(r.Section) > sectionW {
			sectionW = len(r.Section)
		}
	}
	fmt.Fprintf(w, "%-*s  %-*s", sectionW, "section", methodW, "method")
	for i, h := range t.Header {
		fmt.Fprintf(w, "  %*s", widths[i], h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", sectionW+methodW+4+sum(widths)+2*len(widths)))
	prev := ""
	for _, r := range t.Rows {
		section := r.Section
		if section == prev {
			section = ""
		} else if prev != "" {
			fmt.Fprintln(w)
		}
		prev = r.Section
		fmt.Fprintf(w, "%-*s  %-*s", sectionW, section, methodW, r.Method)
		for i, v := range r.Values {
			width := 7
			if i < len(widths) {
				width = widths[i]
			}
			// Counts (node/edge numbers) print as integers, scores with
			// three decimals.
			if v == float64(int64(v)) && (v >= 100 || v <= -100) {
				fmt.Fprintf(w, "  %*d", width, int64(v))
			} else {
				fmt.Fprintf(w, "  %*.3f", width, v)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Value returns the first value of the row matching section and method
// (NaN-free: ok reports presence).
func (t *Table) Value(section, method string, col int) (float64, bool) {
	for _, r := range t.Rows {
		if r.Section == section && r.Method == method && col < len(r.Values) {
			return r.Values[col], true
		}
	}
	return 0, false
}
