package tdmatch

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"github.com/tdmatch/tdmatch/internal/wal"
)

// WAL op kinds: what each log record's payload encodes.
const (
	walOpIngest uint8 = 1 // walIngestPayload
	walOpRemove uint8 = 2 // walRemovePayload
)

// walIngestPayload is the JSON payload of a walOpIngest record: one
// acknowledged Server.Ingest batch.
type walIngestPayload struct {
	Docs []IngestDoc `json:"docs"`
}

// walRemovePayload is the JSON payload of a walOpRemove record: one
// acknowledged Server.Remove batch.
type walRemovePayload struct {
	IDs []string `json:"ids"`
}

// WALOptions tunes OpenWAL. The zero value is the "always" fsync policy
// on the real filesystem.
type WALOptions struct {
	// Sync is the fsync policy name: "always" (default), "interval" or
	// "never" — see Config.WALSync for the tradeoffs.
	Sync string
	// Interval is the flush period under "interval" (default 100ms).
	Interval time.Duration

	// fs lets tests run the log on a fault-injecting in-memory
	// filesystem; nil is the real one.
	fs wal.FS
}

// WALStats snapshots a WAL's counters for /v1/stats.
type WALStats struct {
	// LastSeq is the newest record's sequence number (0 on empty).
	LastSeq uint64 `json:"last_seq"`
	// Appends counts acknowledged mutations logged this process.
	Appends uint64 `json:"appends"`
	// Syncs counts fsyncs issued.
	Syncs uint64 `json:"syncs"`
	// Checkpoints counts log rotations (snapshot saves, compactions).
	Checkpoints uint64 `json:"checkpoints"`
	// SizeBytes is the current log file size.
	SizeBytes int64 `json:"size_bytes"`
	// Policy is the fsync policy name.
	Policy string `json:"policy"`
	// RecoveredRecords is how many records Open recovered for replay.
	RecoveredRecords int `json:"recovered_records"`
}

// WALOptions returns the log options the model's build-time Config
// selected (Config.WALSync, Config.WALSyncInterval), the default a
// serving daemon uses when no explicit policy overrides it.
func (m *Model) WALOptions() WALOptions {
	return WALOptions{Sync: m.cfg.WALSync, Interval: m.cfg.WALSyncInterval}
}

// WAL is the serving write-ahead log: every acknowledged Server.Ingest
// and Server.Remove is appended (and, under the default "always"
// policy, fsynced) before the mutation is swapped in, so a crashed
// daemon replays the log against its last snapshot and loses no
// acknowledged write. Obtain one with OpenWAL, attach it via
// ServeConfig.WAL, and replay recovered records with Replay before
// serving.
type WAL struct {
	log       *wal.Log
	recovered []wal.Record
}

// OpenWAL opens (creating if missing) the write-ahead log at path and
// recovers its records. A torn tail from a crashed append is repaired;
// mid-log corruption fails with wal.ErrCorrupt rather than silently
// dropping acknowledged operations. Call Replay to apply the recovered
// records to the loaded model.
func OpenWAL(path string, opts WALOptions) (*WAL, error) {
	policy := wal.SyncAlways
	if opts.Sync != "" {
		p, err := wal.ParseSyncPolicy(opts.Sync)
		if err != nil {
			return nil, err
		}
		policy = p
	}
	log, recs, err := wal.Open(path, wal.Options{Sync: policy, Interval: opts.Interval, FS: opts.fs})
	if err != nil {
		return nil, err
	}
	return &WAL{log: log, recovered: recs}, nil
}

// Replay applies the records recovered by OpenWAL to m, in order,
// returning how many were applied. Replay is idempotent against the
// snapshot the model was loaded from: a crash between a snapshot save
// and the log rotation leaves records the snapshot already contains,
// and those are recognized (ErrDuplicateDocument on ingest,
// ErrUnknownDocument on remove) and skipped. Any other failure aborts
// the replay — the log does not match the model, and serving a silently
// diverged state would be worse than refusing to start.
func (w *WAL) Replay(m *Model) (int, error) {
	applied := 0
	for _, r := range w.recovered {
		switch r.Op {
		case walOpIngest:
			var p walIngestPayload
			if err := json.Unmarshal(r.Payload, &p); err != nil {
				return applied, fmt.Errorf("tdmatch: wal record %d: decoding ingest payload: %w", r.Seq, err)
			}
			if err := m.Ingest(p.Docs); err != nil {
				if errors.Is(err, ErrDuplicateDocument) {
					continue // the snapshot already carries this batch
				}
				return applied, fmt.Errorf("tdmatch: wal record %d: replaying ingest: %w", r.Seq, err)
			}
		case walOpRemove:
			var p walRemovePayload
			if err := json.Unmarshal(r.Payload, &p); err != nil {
				return applied, fmt.Errorf("tdmatch: wal record %d: decoding remove payload: %w", r.Seq, err)
			}
			if err := m.Remove(p.IDs); err != nil {
				if errors.Is(err, ErrUnknownDocument) {
					continue // the snapshot already carries this removal
				}
				return applied, fmt.Errorf("tdmatch: wal record %d: replaying removal: %w", r.Seq, err)
			}
		default:
			return applied, fmt.Errorf("tdmatch: wal record %d has unknown op kind %d", r.Seq, r.Op)
		}
		applied++
	}
	return applied, nil
}

// appendIngest logs one acknowledged ingest batch and returns its
// sequence number. An error means the record is NOT durably logged and
// the mutation must not be acknowledged.
func (w *WAL) appendIngest(docs []IngestDoc) (uint64, error) {
	payload, err := json.Marshal(walIngestPayload{Docs: docs})
	if err != nil {
		return 0, fmt.Errorf("tdmatch: encoding wal ingest record: %w", err)
	}
	return w.log.Append(walOpIngest, payload)
}

// appendRemove logs one acknowledged removal batch; see appendIngest.
func (w *WAL) appendRemove(ids []string) (uint64, error) {
	payload, err := json.Marshal(walRemovePayload{IDs: ids})
	if err != nil {
		return 0, fmt.Errorf("tdmatch: encoding wal remove record: %w", err)
	}
	return w.log.Append(walOpRemove, payload)
}

// Checkpoint drops every record with sequence number <= upTo by
// rotating the log. Call it only after a model snapshot covering those
// records has been durably saved — Server.Checkpoint sequences the two
// correctly.
func (w *WAL) Checkpoint(upTo uint64) error { return w.log.Checkpoint(upTo) }

// Sync flushes pending appends to stable storage regardless of policy
// (the daemon calls it on graceful shutdown).
func (w *WAL) Sync() error { return w.log.Sync() }

// Close flushes and closes the log. Idempotent.
func (w *WAL) Close() error { return w.log.Close() }

// LastSeq returns the newest record's sequence number (appended or
// recovered; 0 on an empty log).
func (w *WAL) LastSeq() uint64 { return w.log.LastSeq() }

// Stats snapshots the log's counters.
func (w *WAL) Stats() WALStats {
	st := w.log.Stats()
	return WALStats{
		LastSeq:          st.LastSeq,
		Appends:          st.Appends,
		Syncs:            st.Syncs,
		Checkpoints:      st.Checkpoints,
		SizeBytes:        st.SizeBytes,
		Policy:           st.Policy,
		RecoveredRecords: len(w.recovered),
	}
}
