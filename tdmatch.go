// Package tdmatch implements unsupervised matching of data and text, a Go
// reproduction of "Unsupervised Matching of Data and Text" (Ahmadi, Sand,
// Papotti — ICDE 2022).
//
// Given two corpora — any mix of relational tables, taxonomies (structured
// text) and free text — tdmatch builds a joint graph over their content,
// learns node embeddings from random walks, and ranks the documents of one
// corpus against the other by cosine similarity, with no training labels:
//
//	movies, _ := tdmatch.NewTable("movies",
//	    []string{"title", "director", "genre"},
//	    [][]string{{"The Sixth Sense", "Shyamalan", "Thriller"}}, nil)
//	reviews, _ := tdmatch.NewText("reviews",
//	    []string{"Willis sees dead people in this thriller"}, nil)
//	model, _ := tdmatch.Build(movies, reviews, tdmatch.Defaults())
//	matches, _ := model.TopK("reviews:p0", 5)
//
// The pipeline follows the paper: graph creation with intersect filtering
// and node merging (§II), optional expansion with an external knowledge
// resource and MSP compression (§III), random walks plus Word2Vec (§IV-A),
// and cosine top-k matching of metadata nodes (§IV-B).
package tdmatch

import (
	"fmt"

	"github.com/tdmatch/tdmatch/internal/corpus"
	"github.com/tdmatch/tdmatch/internal/kb"
)

// Corpus is one input collection: a table, a taxonomy, or free text.
type Corpus struct {
	c *corpus.Corpus
}

// NewText builds a text corpus from snippets (sentences or paragraphs —
// the granularity is the caller's choice, as in the paper). Snippet i gets
// ID "<name>:p<i>" unless ids is provided.
func NewText(name string, snippets []string, ids []string) (*Corpus, error) {
	c, err := corpus.NewText(name, snippets, ids)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// NewTable builds a relational corpus; every row becomes one document with
// ID "<name>:t<i>" unless ids is provided.
func NewTable(name string, columns []string, rows [][]string, ids []string) (*Corpus, error) {
	c, err := corpus.NewTable(name, columns, rows, ids)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// TaxonomyNode is one concept of a structured-text corpus.
type TaxonomyNode struct {
	// ID must be unique within the corpus.
	ID string
	// Text is the concept label.
	Text string
	// Parent references the parent node ID ("" for roots).
	Parent string
}

// NewTaxonomy builds a structured-text corpus whose documents are hierarchy
// nodes; parent-child pairs are connected in the graph (§II-A).
func NewTaxonomy(name string, nodes []TaxonomyNode) (*Corpus, error) {
	converted := make([]corpus.Node, len(nodes))
	for i, n := range nodes {
		converted[i] = corpus.Node{ID: n.ID, Text: n.Text, Parent: n.Parent}
	}
	c, err := corpus.NewStructured(name, converted)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// LoadCorpus reads a corpus from disk, dispatching on the extension:
// .csv/.tsv become tables, .json (an array of {id, text, parent} objects)
// becomes a taxonomy, anything else is read as one text document per line.
func LoadCorpus(path, name string) (*Corpus, error) {
	c, err := corpus.Load(path, name)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// Name returns the corpus name.
func (c *Corpus) Name() string { return c.c.Name }

// Len returns the number of documents.
func (c *Corpus) Len() int { return c.c.Len() }

// IDs returns all document IDs in corpus order.
func (c *Corpus) IDs() []string { return c.c.IDs() }

// DocText returns the concatenated text of a document.
func (c *Corpus) DocText(id string) (string, bool) {
	d, ok := c.c.Doc(id)
	if !ok {
		return "", false
	}
	return d.Text(), true
}

// Paths returns root-to-node ID paths for a taxonomy corpus (used by
// taxonomy evaluation); nil for other corpus kinds.
func (c *Corpus) Paths() map[string][]string {
	if c.c.Kind != corpus.Structured {
		return nil
	}
	return c.c.Paths()
}

// Relation is one connection fetched from an external resource during
// graph expansion, e.g. style(Tarantino, Comedy).
type Relation struct {
	// Object is the related entity or concept.
	Object string
	// Predicate names the relationship.
	Predicate string
}

// Resource supplies external relations for graph expansion (§III-A); plug
// in knowledge bases, ontologies or concept networks.
type Resource interface {
	// Related returns the relations of a term, nil when unknown.
	Related(term string) []Relation
}

// NewMemoryResource builds an in-memory Resource from triples.
func NewMemoryResource(triples [][3]string) Resource {
	m := kb.NewMemory()
	for _, t := range triples {
		m.Add(t[0], t[1], t[2])
	}
	return memResource{m}
}

type memResource struct{ m *kb.Memory }

func (r memResource) Related(term string) []Relation {
	rels := r.m.Related(term)
	out := make([]Relation, len(rels))
	for i, rel := range rels {
		out[i] = Relation{Object: rel.Object, Predicate: rel.Predicate}
	}
	return out
}

// resourceAdapter bridges the public Resource to the internal kb.Resource.
type resourceAdapter struct{ r Resource }

func (a resourceAdapter) Related(term string) []kb.Relation {
	rels := a.r.Related(term)
	out := make([]kb.Relation, len(rels))
	for i, rel := range rels {
		out[i] = kb.Relation{Object: rel.Object, Predicate: rel.Predicate}
	}
	return out
}

// Synonyms declares surface variants that should share one graph node
// (synonyms, acronyms, known typos — §II-C).
type Synonyms struct {
	// Canonical is the representative form.
	Canonical string
	// Variants are merged into the canonical form.
	Variants []string
}

func buildLexicon(groups []Synonyms) *kb.Lexicon {
	if len(groups) == 0 {
		return nil
	}
	l := kb.NewLexicon()
	for _, g := range groups {
		l.AddSynonyms(g.Canonical, g.Variants...)
	}
	return l
}

// Match is one ranked candidate returned by the model.
type Match struct {
	// ID is the matched document's ID.
	ID string
	// Score is the cosine similarity in [-1, 1].
	Score float64
}

// String renders the match as "id(score)" with three decimals, the
// format the CLIs print.
func (m Match) String() string { return fmt.Sprintf("%s(%.3f)", m.ID, m.Score) }
