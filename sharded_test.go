package tdmatch

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/tdmatch/tdmatch/internal/match"
)

// shardedCorpora builds movie/review corpora big enough that a 3-way
// shard split puts several documents in every shard (the serve-test
// pair has only 6 per side).
func shardedCorpora(t testing.TB, n int) (*Corpus, *Corpus) {
	t.Helper()
	directors := []string{"shyamalan", "tarantino", "coppola", "mctiernan", "scorsese", "bigelow"}
	genres := []string{"thriller", "drama", "crime", "action"}
	stars := []string{"willis", "brando", "grier", "phoenix", "thurman"}
	rows := make([][]string, n)
	snippets := make([]string, n)
	for i := 0; i < n; i++ {
		d, g, s := directors[i%len(directors)], genres[i%len(genres)], stars[i%len(stars)]
		rows[i] = []string{fmt.Sprintf("movie number %d", i), d, s, g}
		snippets[i] = fmt.Sprintf("%s directs %s in a %s about movie number %d", d, s, g, i)
	}
	movies, err := NewTable("movies", []string{"title", "director", "star", "genre"}, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	reviews, err := NewText("reviews", snippets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return movies, reviews
}

// buildShardedModel trains a deterministic mid-sized model with the
// given index kind and explicit ServeShards.
func buildShardedModel(t testing.TB, kind IndexKind, shards int) *Model {
	t.Helper()
	movies, reviews := shardedCorpora(t, 48)
	cfg := serveTestConfig(7)
	cfg.Index = kind
	cfg.ServeShards = shards
	if kind == IndexIVF {
		cfg.IVFClusters = 4
	}
	m, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// queryIDs returns the query-side documents with embeddings.
func queryIDs(m *Model) []string {
	var ids []string
	for _, id := range m.second.IDs() {
		if m.Vector(id) != nil {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestModelReshardParity checks the serving surface end to end: for
// every index kind, a model resharded to 1/3/8 shards returns
// bit-identical MatchAll, TopKBatch and TopK results to the unsharded
// build, and Reshard is a reversible O(1) rewrap (fingerprints and
// results unchanged after restoring shards=0).
func TestModelReshardParity(t *testing.T) {
	for _, kind := range []IndexKind{IndexFlat, IndexIVF, IndexSQ8} {
		t.Run(kind.String(), func(t *testing.T) {
			m := buildShardedModel(t, kind, -1) // explicit unsharded baseline
			ids := queryIDs(m)
			if len(ids) < 10 {
				t.Fatalf("only %d embedded query docs", len(ids))
			}
			const k = 5
			baseAll := m.MatchAllWorkers(true, k, 2)
			baseBatch := m.TopKBatchWorkers(ids, k, 2)

			for _, shards := range []int{1, 3, 8} {
				m.Reshard(shards)
				if shards > 1 {
					if _, ok := servingBase(m.secondIdx).(*match.Sharded); !ok {
						t.Fatalf("shards=%d: second index base is %T, want *match.Sharded", shards, servingBase(m.secondIdx))
					}
				}
				if got := m.MatchAllWorkers(true, k, 2); !reflect.DeepEqual(got, baseAll) {
					t.Errorf("shards=%d: MatchAll diverged", shards)
				}
				if got := m.TopKBatchWorkers(ids, k, 2); !reflect.DeepEqual(got, baseBatch) {
					t.Errorf("shards=%d: TopKBatch diverged", shards)
				}
				for _, id := range ids[:4] {
					got, err := m.TopK(id, k)
					if err != nil {
						t.Fatal(err)
					}
					want := batchResultOf(baseBatch, id)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("shards=%d: TopK(%s) diverged\ngot:  %v\nwant: %v", shards, id, got, want)
					}
				}
			}

			// Restoring the default leaves results and identity untouched.
			m.Reshard(0)
			if got := m.TopKBatchWorkers(ids, k, 2); !reflect.DeepEqual(got, baseBatch) {
				t.Error("Reshard(0) round-trip diverged")
			}
		})
	}
}

// batchResultOf finds the ranking for id in a batch baseline.
func batchResultOf(batch []BatchResult, id string) []Match {
	for _, r := range batch {
		if r.ID == id {
			return r.Matches
		}
	}
	return nil
}

// TestServerShardedParity runs two Servers over same-seed models — one
// sharded 3 ways, one unsharded — through queries, a live ingest and a
// removal, asserting identical rankings at every step. This pins the
// clone-and-swap path: cloneServing must preserve the Sharded wrapper
// and its shard layout across mutations.
func TestServerShardedParity(t *testing.T) {
	plain := NewServer(buildShardedModel(t, IndexFlat, -1), ServeConfig{CacheSize: -1, Workers: 2})
	defer plain.Close()
	sharded := NewServer(buildShardedModel(t, IndexFlat, 3), ServeConfig{CacheSize: -1, Workers: 2})
	defer sharded.Close()

	ids := queryIDs(plain.cur.Load().model)
	const k = 6
	check := func(stage string) {
		t.Helper()
		pb := plain.TopKBatch(ids, k)
		sb := sharded.TopKBatch(ids, k)
		if !reflect.DeepEqual(pb, sb) {
			t.Fatalf("%s: sharded batch diverged from unsharded", stage)
		}
		for _, id := range ids[:3] {
			p, perr := plain.TopK(id, k)
			s, serr := sharded.TopK(id, k)
			if (perr == nil) != (serr == nil) || !reflect.DeepEqual(p, s) {
				t.Fatalf("%s: TopK(%s) diverged: %v/%v vs %v/%v", stage, id, p, perr, s, serr)
			}
		}
	}
	check("initial")

	docs := []IngestDoc{
		{Side: 2, ID: "reviews:live-a", Values: []string{"tarantino directs willis in a crime about movie number 3"}},
		{Side: 2, ID: "reviews:live-b", Values: []string{"shyamalan directs phoenix in a thriller about movie number 12"}},
	}
	for _, s := range []*Server{plain, sharded} {
		if err := s.Ingest(docs); err != nil {
			t.Fatal(err)
		}
	}
	ids = append(ids, "reviews:live-a", "reviews:live-b")
	check("post-ingest")

	for _, s := range []*Server{plain, sharded} {
		if err := s.Remove([]string{ids[0], "reviews:live-a"}); err != nil {
			t.Fatal(err)
		}
	}
	ids = ids[1 : len(ids)-2]
	check("post-remove")

	// The sharded server surfaces per-shard counters; the plain one
	// omits them. Queries from second-side docs rank first-side targets,
	// so the traffic lands on the first index's shards.
	st := sharded.Stats()
	if len(st.FirstShards) != 3 || len(st.SecondShards) != 3 {
		t.Fatalf("shard stats = %+v / %+v, want 3 shards each", st.FirstShards, st.SecondShards)
	}
	var q uint64
	for _, sh := range st.FirstShards {
		q += sh.Queries
	}
	if q == 0 {
		t.Error("sharded server served queries but shard counters are zero")
	}
	if pst := plain.Stats(); pst.FirstShards != nil || pst.SecondShards != nil {
		t.Errorf("unsharded server reports shard stats: %+v / %+v", pst.FirstShards, pst.SecondShards)
	}
}

// TestConfigServeShardsResolution pins the auto-shard policy: explicit
// counts are honored exactly, negatives disable, and 0 scales with the
// corpus so tiny indexes never pay scatter-gather overhead.
func TestConfigServeShardsResolution(t *testing.T) {
	cases := []struct {
		cfg  int
		n    int
		want int
	}{
		{cfg: 5, n: 10, want: 5},      // explicit wins regardless of size
		{cfg: -1, n: 100000, want: 1}, // negative disables
		{cfg: 0, n: 100, want: 1},     // too small for auto
		{cfg: 0, n: autoShardRows, want: 1},
	}
	for _, c := range cases {
		cfg := Config{ServeShards: c.cfg}
		if got := cfg.serveShards(c.n); got != c.want {
			t.Errorf("serveShards(cfg=%d, n=%d) = %d, want %d", c.cfg, c.n, got, c.want)
		}
	}
	// Large corpora shard up to GOMAXPROCS.
	cfg := Config{}
	if got := cfg.serveShards(1 << 20); got < 1 {
		t.Errorf("serveShards(1M) = %d", got)
	}
}

// TestModelShardStats checks the Model-level stats surface: nil for
// unsharded sides, live counters for sharded ones.
func TestModelShardStats(t *testing.T) {
	m := buildShardedModel(t, IndexSQ8, 2)
	first, second := m.ShardStats()
	if len(first) != 2 || len(second) != 2 {
		t.Fatalf("ShardStats lengths = %d/%d, want 2/2", len(first), len(second))
	}
	// A query from a second-side doc ranks first-side targets, so the
	// first index's counters move.
	ids := queryIDs(m)
	if _, err := m.TopK(ids[0], 3); err != nil {
		t.Fatal(err)
	}
	first, _ = m.ShardStats()
	var q uint64
	for _, sh := range first {
		q += sh.Queries
	}
	if q == 0 {
		t.Error("TopK did not bump shard query counters")
	}

	m.Reshard(-1)
	first, second = m.ShardStats()
	if first != nil || second != nil {
		t.Errorf("unsharded ShardStats = %v/%v, want nil/nil", first, second)
	}
}
