package tdmatch

import (
	"fmt"
	"testing"

	"github.com/tdmatch/tdmatch/internal/match"
)

// Model-level tests for the segmented serving core: ingest batches pile
// up sealed segments, queries stay bit-identical to an exact scan over
// the live vectors, and Compact collapses the stack back to one base.

// TestSegmentedIngestStacksSegments drives enough warm ingests through
// a small auto-seal threshold to grow a multi-segment stack, and pins
// the invariants the stack must keep while it grows: live-doc
// accounting, bit-identity of TopK against a from-scratch flat index
// over the same live vectors, and single-segment collapse on Compact.
func TestSegmentedIngestStacksSegments(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	cfg := ingestTestConfig()
	cfg.SegmentMaxDocs = 2 // seal after every two delta docs
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 3; batch++ {
		docs := []IngestDoc{
			{Side: 2, ID: fmt.Sprintf("reviews:seg%da", batch),
				Values: []string{"Brando and Pacino in a mafia family saga"}},
			{Side: 2, ID: fmt.Sprintf("reviews:seg%db", batch),
				Values: []string{"Coppola directs a crime dynasty epic"}},
		}
		if err := model.Ingest(docs); err != nil {
			t.Fatal(err)
		}
	}
	_, second := model.SegmentStats()
	if second.Segments < 3 {
		t.Fatalf("second side has %d sealed segments after 3 sealing batches, want >= 3 (stats %+v)",
			second.Segments, second)
	}

	// Every ranking the stack serves must equal an exact flat scan over
	// the live vectors — the monolithic oracle.
	assertExactParity(t, model)

	// Removals of sealed rows land in the tombstone overlay, not storage.
	if err := model.Remove([]string{"reviews:seg0a", "reviews:seg1b"}); err != nil {
		t.Fatal(err)
	}
	_, second = model.SegmentStats()
	if second.Tombstones != 2 {
		t.Fatalf("tombstones = %d, want 2", second.Tombstones)
	}
	assertExactParity(t, model)

	// MatchAll funnels every query through the segmented TopKBatch
	// kernel; it must agree with the oracle-checked single-query path.
	for q, got := range model.MatchAll(false, 5) {
		want, err := model.TopK(q, 5)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		if len(got) != len(want) {
			t.Fatalf("MatchAll(%s): %d results, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MatchAll(%s) rank %d: got %v, want %v (batched vs single-query)",
					q, i, got[i], want[i])
			}
		}
	}

	if err := model.Compact(); err != nil {
		t.Fatal(err)
	}
	first, second := model.SegmentStats()
	if first.Segments != 1 || second.Segments != 1 || second.Tombstones != 0 || second.DeltaDocs != 0 {
		t.Fatalf("stack not collapsed by Compact: first %+v second %+v", first, second)
	}
	assertExactParity(t, model)
}

// assertExactParity checks TopK for every embedded document against a
// from-scratch flat index built over the model's live vectors.
func assertExactParity(t *testing.T, m *Model) {
	t.Helper()
	for side := 1; side <= 2; side++ {
		c := m.first
		if side == 2 {
			c = m.second
		}
		seg, ok := m.indexOf(side).(*match.Segmented)
		if !ok {
			t.Fatalf("side %d serving index is %T, want *match.Segmented", side, m.indexOf(side))
		}
		var ids []string
		for _, segIDs := range seg.SegmentManifest() {
			ids = append(ids, segIDs...)
		}
		arena := make([]float32, 0, len(ids)*m.dim)
		for _, id := range ids {
			row := make([]float32, m.dim)
			copy(row, m.vectors[id])
			arena = append(arena, row...)
		}
		flat, err := match.NewIndexArena(ids, arena, m.dim)
		if err != nil {
			t.Fatal(err)
		}
		queries := c.IDs()
		if len(queries) > 20 {
			queries = queries[:20]
		}
		for _, q := range queries {
			v := m.vectors[q]
			if v == nil {
				continue
			}
			got, err := m.TopK(q, 5)
			if err != nil {
				t.Fatalf("TopK(%s): %v", q, err)
			}
			want := toMatches(flat.TopK(v, 5))
			if len(got) != len(want) {
				t.Fatalf("TopK(%s): %d results, want %d", q, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("TopK(%s) rank %d: got %v, want %v (segmented vs flat oracle)",
						q, i, got[i], want[i])
				}
			}
		}
	}
}

// indexOf returns a side's serving index (test helper).
func (m *Model) indexOf(side int) match.VectorIndex {
	if side == 1 {
		return m.secondIdx // side-1 queries rank side-2 documents
	}
	return m.firstIdx
}

// TestSegmentedWarmStartRecallOnIMDb is the model-level acceptance bar
// of the segmented core: on the seed IMDb dataset, removing a held-out
// slice and re-ingesting it in small batches — small enough that the
// auto-seal threshold piles up several sealed segments — must keep
// recall@10 >= 0.95 against the pre-mutation rankings.
func TestSegmentedWarmStartRecallOnIMDb(t *testing.T) {
	model := buildIMDbModel(t, func(cfg *Config) {
		cfg.SegmentMaxDocs = 2
	})
	queries := append(append([]string(nil), model.first.IDs()...), model.second.IDs()...)
	const k = 10
	want := map[string][]string{}
	for _, q := range queries {
		if model.vectors[q] == nil {
			continue
		}
		matches, err := model.TopK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(matches))
		for i, mt := range matches {
			ids[i] = mt.ID
		}
		want[q] = ids
	}
	if len(want) < 100 {
		t.Fatalf("only %d live queries — fixture too small", len(want))
	}

	held := []string{
		model.first.IDs()[3], model.first.IDs()[17], model.first.IDs()[41],
		model.second.IDs()[0], model.second.IDs()[25], model.second.IDs()[80],
	}
	docs := make([]IngestDoc, len(held))
	for i, id := range held {
		docs[i] = ingestDocOf(model, id)
	}
	if err := model.Remove(held); err != nil {
		t.Fatal(err)
	}
	// One doc per Ingest call: with SegmentMaxDocs = 2 the deltas seal
	// every other call, growing a real multi-segment stack.
	for _, doc := range docs {
		if err := model.Ingest([]IngestDoc{doc}); err != nil {
			t.Fatal(err)
		}
	}
	first, second := model.SegmentStats()
	if first.Segments+second.Segments < 3 {
		t.Fatalf("expected a multi-segment stack, got first %+v second %+v", first, second)
	}

	hits, total := 0, 0
	for q, wantIDs := range want {
		got, err := model.TopK(q, k)
		if err != nil {
			t.Fatalf("TopK(%s): %v", q, err)
		}
		gotSet := map[string]struct{}{}
		for _, mt := range got {
			gotSet[mt.ID] = struct{}{}
		}
		for _, id := range wantIDs {
			if _, ok := gotSet[id]; ok {
				hits++
			}
		}
		total += len(wantIDs)
	}
	recall := float64(hits) / float64(total)
	t.Logf("segmented warm-start recall@10 = %.4f over %d ranked slots", recall, total)
	if recall < 0.95 {
		t.Errorf("segmented warm-start recall@10 = %.4f, want >= 0.95", recall)
	}
}

// TestStalenessSurvivesMidCompactionIngest is the regression test for
// the staleness accounting rewrite: with the old single counter, a
// compaction reset lost any ingest that landed between the compaction
// clone and the swap. The watermark accounting must keep counting it.
// The test replays the exact step sequence Server.Compact performs,
// deterministically.
func TestStalenessSurvivesMidCompactionIngest(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:pre", Values: []string{"a mafia saga"}},
	}); err != nil {
		t.Fatal(err)
	}

	// Server.Compact step 1: clone the serving model, remember the fold
	// point, retrain the clone off to the side.
	work := model.clone()
	base := len(work.deltas)
	if err := work.Compact(); err != nil {
		t.Fatal(err)
	}

	// A client ingest lands on the serving model mid-compaction.
	mid := IngestDoc{Side: 2, ID: "reviews:mid", Values: []string{"Coppola crime epic"}}
	if err := model.Ingest([]IngestDoc{mid}); err != nil {
		t.Fatal(err)
	}

	// Server.Compact step 2: replay the deltas that landed after the
	// clone point onto the compacted model, then swap it in.
	for _, d := range model.deltas[base:] {
		if len(d.Added) > 0 {
			if err := work.Ingest(ingestDocsOfSaved(d.Added)); err != nil {
				t.Fatal(err)
			}
		}
		if len(d.Removed) > 0 {
			if err := work.Remove(d.Removed); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The mid-compaction ingest is NOT folded into the retrain: the
	// swapped-in model must still report it as stale. The old counter
	// reset reported 0 here.
	if got := work.Staleness(); got != 1 {
		t.Errorf("staleness after mid-compaction ingest replay = %d, want 1", got)
	}
	// And the replayed document serves.
	if _, err := work.TopK("reviews:mid", 2); err != nil {
		t.Errorf("replayed document not servable: %v", err)
	}
	// A quiescent compact still drains staleness to zero.
	if err := work.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := work.Staleness(); got != 0 {
		t.Errorf("staleness after quiescent Compact = %d, want 0", got)
	}
}

// TestServerCompactOnline exercises the serving-layer compaction end to
// end: ingest through the server, compact, and check the swap updated
// generation, compaction and staleness counters without dropping docs.
func TestServerCompactOnline(t *testing.T) {
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, ingestTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(model, ServeConfig{CacheSize: 8})
	if err := srv.Ingest([]IngestDoc{
		{Side: 2, ID: "reviews:live", Values: []string{"Brando leads a crime family"}},
	}); err != nil {
		t.Fatal(err)
	}
	before := srv.Stats()
	if before.Staleness != 1 {
		t.Fatalf("staleness before compact = %d, want 1", before.Staleness)
	}
	docsBefore := len(srv.Model().Vectors())
	if err := srv.Compact(); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats()
	if after.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", after.Compactions)
	}
	if after.Generation <= before.Generation {
		t.Errorf("generation = %d, want > %d (swap must bump it)", after.Generation, before.Generation)
	}
	if after.Staleness != 0 {
		t.Errorf("staleness after compact = %d, want 0", after.Staleness)
	}
	if got := len(srv.Model().Vectors()); got != docsBefore {
		t.Errorf("docs changed across compact: %d -> %d", docsBefore, got)
	}
	matches, err := srv.TopK("reviews:live", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Error("ingested document lost by compaction")
	}
}
