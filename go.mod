module github.com/tdmatch/tdmatch

go 1.24
