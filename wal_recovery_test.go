package tdmatch

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// stormOp is one acknowledged mutation of the crash-replay storms:
// either an ingest of docs or a removal of ids.
type stormOp struct {
	docs []IngestDoc
	ids  []string
}

func (op stormOp) apply(ingest func([]IngestDoc) error, remove func([]string) error) error {
	if op.docs != nil {
		return ingest(op.docs)
	}
	return remove(op.ids)
}

// recoveryStorm generates a deterministic mutation sequence: mostly
// single-doc text-side ingests, with occasional removals of an earlier
// ingested document. Every op is valid when applied in order.
func recoveryStorm(rng *rand.Rand, n int) []stormOp {
	ops := make([]stormOp, 0, n)
	var live []string
	next := 0
	for len(ops) < n {
		if len(live) > 2 && rng.Intn(4) == 0 {
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			ops = append(ops, stormOp{ids: []string{id}})
			continue
		}
		id := fmt.Sprintf("reviews:storm%d", next)
		next++
		live = append(live, id)
		ops = append(ops, stormOp{docs: []IngestDoc{{
			Side:   2,
			ID:     id,
			Values: []string{fmt.Sprintf("storm review %d about a %s film by %s", next, []string{"crime", "horror", "thriller", "comedy"}[rng.Intn(4)], []string{"Coppola", "Tarantino", "Scott", "Shyamalan"}[rng.Intn(4)])},
		}}})
	}
	return ops
}

// recoveryFixture builds a small model once and saves its snapshot,
// returning the snapshot path and a loader that binds a fresh copy
// (fresh corpora each time, so replay mutations never alias).
func recoveryFixture(t *testing.T) (snapPath string, load func(t *testing.T) *Model) {
	t.Helper()
	cfg := Defaults()
	cfg.Seed = 7
	cfg.NumWalks = 6
	cfg.WalkLength = 10
	cfg.Dim = 24
	cfg.Epochs = 1
	cfg.Workers = 1
	movies, reviews := fixtureCorpora(t)
	model, err := Build(movies, reviews, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snapPath = filepath.Join(t.TempDir(), "model.tdm")
	if err := model.SaveFile(snapPath); err != nil {
		t.Fatal(err)
	}
	load = func(t *testing.T) *Model {
		t.Helper()
		mv, rv := fixtureCorpora(t)
		m, err := LoadModelFile(snapPath, mv, rv)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return snapPath, load
}

// rankings captures the full serving state of a model as seen through
// its query API: the sorted doc-ID universe plus every document's
// top-k matches (scores included). Two models with equal rankings are
// indistinguishable to clients.
func rankings(t *testing.T, m *Model, k int) map[string][]Match {
	t.Helper()
	ids := make([]string, 0, len(m.Vectors()))
	for id := range m.Vectors() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(map[string][]Match, len(ids))
	for _, id := range ids {
		ms, err := m.TopK(id, k)
		if err != nil {
			t.Fatalf("topk %q: %v", id, err)
		}
		out[id] = ms
	}
	return out
}

// replayCut copies the first cut bytes of walPath into a fresh file
// (the exact on-disk state an append-only, always-fsynced log has
// after a crash at that offset), then runs the recovery path a
// restarting daemon runs: load snapshot, open WAL, replay.
func replayCut(t *testing.T, walPath string, cut int64, load func(*testing.T) *Model) (*Model, *WAL) {
	t.Helper()
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if cut > int64(len(data)) {
		t.Fatalf("cut %d beyond log size %d", cut, len(data))
	}
	cutPath := filepath.Join(t.TempDir(), "cut.wal")
	if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	m := load(t)
	w, err := OpenWAL(cutPath, WALOptions{Sync: "always"})
	if err != nil {
		t.Fatalf("cut %d: open: %v", cut, err)
	}
	if _, err := w.Replay(m); err != nil {
		w.Close()
		t.Fatalf("cut %d: replay: %v", cut, err)
	}
	return m, w
}

// TestCrashReplayPropertyAckedPrefix is the crash-replay property
// test: run an ingest/remove storm through a WAL-attached Server
// under the "always" policy, record the log size after every
// acknowledged op, then simulate a crash at every frame boundary and
// at seeded interior offsets. For each crash point, replaying the
// surviving log against the snapshot must reproduce — bit-identically,
// as observed through TopK — a reference model that applied exactly
// the acknowledged prefix and nothing else.
func TestCrashReplayPropertyAckedPrefix(t *testing.T) {
	snapPath, load := recoveryFixture(t)
	_ = snapPath
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	w, err := OpenWAL(walPath, WALOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(load(t), ServeConfig{Workers: 1, WAL: w})

	rng := rand.New(rand.NewSource(0x7da1))
	ops := recoveryStorm(rng, 18)
	// boundaries[k] is the log size once exactly k ops are acked.
	boundaries := []int64{w.Stats().SizeBytes}
	for i, op := range ops {
		if err := op.apply(srv.Ingest, srv.Remove); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		boundaries = append(boundaries, w.Stats().SizeBytes)
	}
	srv.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash points: every frame boundary (including the bare header and
	// a partial header), plus one seeded interior offset per frame —
	// a torn tail that must recover to the preceding boundary.
	cuts := map[int64]int{0: 0, 3: 0}
	for k, b := range boundaries {
		cuts[b] = k
		if k > 0 {
			prev := boundaries[k-1]
			if b-prev > 1 {
				cuts[prev+1+rng.Int63n(b-prev-1)] = k - 1
			}
		}
	}

	// The reference model advances through the acked ops in lockstep
	// with ascending cut offsets: at cut c it has applied exactly the
	// ops whose frame completed at or before c.
	ref := load(t)
	applied := 0
	ordered := make([]int64, 0, len(cuts))
	for c := range cuts {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, cut := range ordered {
		want := cuts[cut]
		for applied < want {
			if err := ops[applied].apply(ref.Ingest, ref.Remove); err != nil {
				t.Fatal(err)
			}
			applied++
		}
		m, cutWAL := replayCut(t, walPath, cut, load)
		if got := cutWAL.Stats().RecoveredRecords; got != want {
			cutWAL.Close()
			t.Fatalf("cut %d: recovered %d records, want the acked prefix %d", cut, got, want)
		}
		gotR := rankings(t, m, 3)
		wantR := rankings(t, ref, 3)
		if !reflect.DeepEqual(gotR, wantR) {
			cutWAL.Close()
			t.Fatalf("cut %d (acked prefix %d): replayed state diverges from reference\n got: %v\nwant: %v", cut, want, gotR, wantR)
		}
		// The repaired log must accept new writes where the prefix ended.
		if seq, err := cutWAL.appendRemove([]string{"post-crash"}); err != nil {
			cutWAL.Close()
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		} else if seq != uint64(want)+1 {
			cutWAL.Close()
			t.Fatalf("cut %d: post-recovery seq = %d, want %d", cut, seq, want+1)
		}
		cutWAL.Close()
	}
}

// TestCrashReplayAcrossCheckpoint crashes after a mid-storm
// Server.Checkpoint: the snapshot saved by the checkpoint plus the
// rotated log's surviving records must reconstruct exactly the acked
// state at every post-checkpoint frame boundary.
func TestCrashReplayAcrossCheckpoint(t *testing.T) {
	_, load := recoveryFixture(t)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	ckptSnap := filepath.Join(dir, "ckpt.tdm")
	w, err := OpenWAL(walPath, WALOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(load(t), ServeConfig{Workers: 1, WAL: w})

	rng := rand.New(rand.NewSource(0xc4e1))
	ops := recoveryStorm(rng, 16)
	for _, op := range ops[:8] {
		if err := op.apply(srv.Ingest, srv.Remove); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Checkpoint(func(m *Model) error { return m.SaveFile(ckptSnap) }); err != nil {
		t.Fatal(err)
	}
	boundaries := []int64{w.Stats().SizeBytes}
	for _, op := range ops[8:] {
		if err := op.apply(srv.Ingest, srv.Remove); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, w.Stats().SizeBytes)
	}
	srv.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	loadCkpt := func(t *testing.T) *Model {
		t.Helper()
		mv, rv := fixtureCorpora(t)
		m, err := LoadModelFile(ckptSnap, mv, rv)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := loadCkpt(t)
	for k, cut := range boundaries {
		if k > 0 {
			if err := ops[8+k-1].apply(ref.Ingest, ref.Remove); err != nil {
				t.Fatal(err)
			}
		}
		m, cutWAL := replayCut(t, walPath, cut, loadCkpt)
		if got := cutWAL.Stats().RecoveredRecords; got != k {
			cutWAL.Close()
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, k)
		}
		if !reflect.DeepEqual(rankings(t, m, 3), rankings(t, ref, 3)) {
			cutWAL.Close()
			t.Fatalf("boundary %d: replay from checkpoint snapshot diverges from reference", k)
		}
		cutWAL.Close()
	}
}

// TestReplayIdempotentAgainstNewerSnapshot covers the crash window
// between a snapshot save and the log rotation: the snapshot already
// contains every logged op, and replaying the un-rotated log against
// it must skip the duplicates and converge to the same state.
func TestReplayIdempotentAgainstNewerSnapshot(t *testing.T) {
	_, load := recoveryFixture(t)
	dir := t.TempDir()
	walPath := filepath.Join(dir, "ingest.wal")
	w, err := OpenWAL(walPath, WALOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(load(t), ServeConfig{Workers: 1, WAL: w})
	rng := rand.New(rand.NewSource(0x1de9))
	for i, op := range recoveryStorm(rng, 10) {
		if err := op.apply(srv.Ingest, srv.Remove); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Snapshot saved, crash before Checkpoint rotated the log.
	snap2 := filepath.Join(dir, "newer.tdm")
	if err := srv.Model().SaveFile(snap2); err != nil {
		t.Fatal(err)
	}
	want := rankings(t, srv.Model(), 3)
	srv.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	mv, rv := fixtureCorpora(t)
	m, err := LoadModelFile(snap2, mv, rv)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(walPath, WALOptions{Sync: "always"})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Ingest records whose doc survives in the snapshot are recognized
	// as duplicates and skipped; ingest/remove pairs that cancelled out
	// before the save re-apply harmlessly. Either way the replay must
	// converge on the snapshot's state.
	if _, err := w2.Replay(m); err != nil {
		t.Fatalf("replay against newer snapshot: %v", err)
	}
	if !reflect.DeepEqual(rankings(t, m, 3), want) {
		t.Fatal("idempotent replay diverged from the snapshot state")
	}
}
